"""Unit tests for Themis-S: PSN-based spraying (Eq. 1) in both modes."""

import pytest

from repro.net.node import Device
from repro.net.packet import FlowKey, ack_packet, data_packet
from repro.sim.engine import Simulator
from repro.sim.rng import SimRng
from repro.switch.buffer import SharedBuffer
from repro.switch.ecn import EcnConfig, EcnMarker
from repro.switch.lb import EcmpLB, ecmp_index
from repro.switch.switch import Switch
from repro.themis.config import ThemisConfig
from repro.themis.source import ThemisSource

FLOW = FlowKey(0, 9)  # local NIC 0 -> remote NIC 9


class SourceHarness:
    def __init__(self, n_paths=4):
        self.sim = Simulator()
        self.tor = Switch(self.sim, "stor", lb=EcmpLB(),
                          buffer=SharedBuffer(10**6),
                          ecn_marker=EcnMarker(EcnConfig(), SimRng(0)))
        self.tor.down_nics.add(0)
        sink = Device(self.sim, "fabric")
        self.uplinks = []
        for _ in range(n_paths):
            port = self.tor.add_port(1e9, 0)
            port.connect(sink)
            self.uplinks.append(port)
        self.tor.routes[9] = self.uplinks
        self.source = ThemisSource(ThemisConfig())
        self.tor.add_middleware(self.source)

    def select(self, psn, sport=500):
        pkt = data_packet(FLOW, psn, 1000, udp_sport=sport)
        port = self.tor._select(pkt, self.uplinks)
        return pkt, port


class TestDirectMode:
    def test_eq1_mapping(self):
        """path_i = (PSN mod N + P_base) mod N, exactly."""
        h = SourceHarness(n_paths=4)
        probe = data_packet(FLOW, 0, 1000, udp_sport=500)
        base = ecmp_index(probe, 4, salt=h.tor.hash_salt,
                          rot=h.tor.hash_rot)
        for psn in range(16):
            pkt, port = h.select(psn)
            expected = (psn % 4 + base) % 4
            assert port is h.uplinks[expected]
            assert pkt.path_index == expected

    def test_same_residue_same_path(self):
        """The property Eq. 3 relies on."""
        h = SourceHarness(n_paths=4)
        _, port_a = h.select(3)
        _, port_b = h.select(7)
        _, port_c = h.select(11)
        assert port_a is port_b is port_c

    def test_uniform_coverage(self):
        h = SourceHarness(n_paths=4)
        ports = [h.select(psn)[1] for psn in range(8)]
        assert set(ports) == set(h.uplinks)

    def test_base_path_cached_per_flow(self):
        h = SourceHarness(n_paths=4)
        h.select(0)
        assert FLOW in h.source._base_cache

    def test_counts_sprayed_packets(self):
        h = SourceHarness(n_paths=4)
        for psn in range(5):
            h.select(psn)
        assert h.source.packets_sprayed == 5

    def test_control_packets_not_sprayed(self):
        h = SourceHarness(n_paths=4)
        ack = ack_packet(FlowKey(9, 0), 3)  # travels 0 -> 9 direction
        chosen = {h.tor._select(ack, h.uplinks) for _ in range(8)}
        assert len(chosen) == 1  # ECMP-pinned, untouched by Themis-S

    def test_non_local_source_not_sprayed(self):
        """Transit data (src NIC not under this ToR) is left to the LB."""
        h = SourceHarness(n_paths=4)
        pkt = data_packet(FlowKey(5, 9), 7, 1000, udp_sport=500)
        assert h.source.select_port(h.tor, pkt, h.uplinks) is None

    def test_local_destination_not_sprayed(self):
        h = SourceHarness(n_paths=4)
        h.tor.down_nics.add(9)  # now intra-rack
        pkt = data_packet(FLOW, 7, 1000, udp_sport=500)
        assert h.source.select_port(h.tor, pkt, h.uplinks) is None


class TestConfigValidation:
    def test_pathmap_mode_needs_provider(self):
        with pytest.raises(ValueError):
            ThemisSource(ThemisConfig(spray_mode="pathmap"))

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            ThemisConfig(spray_mode="nonsense")

    def test_capacity_factor_must_exceed_one(self):
        with pytest.raises(ValueError):
            ThemisConfig(queue_capacity_factor=0.9)
