"""Unit tests for the Themis-D flow table."""

from repro.net.packet import FlowKey
from repro.themis.flow_table import FlowTable


class TestFlowTable:
    def test_lazy_creation(self):
        table = FlowTable()
        flow = FlowKey(0, 1)
        assert table.get(flow) is None
        entry = table.get_or_create(flow, n_paths=4, queue_capacity=16)
        assert table.get(flow) is entry
        assert len(table) == 1

    def test_get_or_create_idempotent(self):
        table = FlowTable()
        flow = FlowKey(0, 1)
        a = table.get_or_create(flow, 4, 16)
        b = table.get_or_create(flow, 8, 32)  # params ignored on hit
        assert a is b
        assert a.n_paths == 4

    def test_distinct_qps_distinct_entries(self):
        table = FlowTable()
        table.get_or_create(FlowKey(0, 1, 0), 4, 16)
        table.get_or_create(FlowKey(0, 1, 1), 4, 16)
        assert len(table) == 2

    def test_entries_listing(self):
        table = FlowTable()
        table.get_or_create(FlowKey(0, 1), 4, 16)
        table.get_or_create(FlowKey(2, 3), 4, 16)
        flows = {e.flow for e in table.entries()}
        assert flows == {FlowKey(0, 1), FlowKey(2, 3)}


class TestFlowEntry:
    def test_same_path_is_eq3(self):
        table = FlowTable()
        entry = table.get_or_create(FlowKey(0, 1), n_paths=4,
                                    queue_capacity=16)
        assert entry.same_path(2, 6)      # 2 % 4 == 6 % 4
        assert not entry.same_path(2, 5)

    def test_initial_compensation_state(self):
        table = FlowTable()
        entry = table.get_or_create(FlowKey(0, 1), 4, 16)
        assert entry.blocked_epsn is None
        assert not entry.valid
