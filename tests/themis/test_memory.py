"""Tests for the §4 / Table 1 memory-overhead model."""

import pytest

from repro.themis.memory import (FLOW_ENTRY_BYTES, MemoryParams,
                                 memory_overhead, queue_entries,
                                 TOFINO_SRAM_BYTES)


class TestReferenceValues:
    """Table 1's numbers plugged into Eq. 4."""

    def test_flow_entry_is_20_bytes(self):
        assert FLOW_ENTRY_BYTES == 20

    def test_queue_entries_reference(self):
        # BW*RTT = 400Gbps * 2us = 100 KB; * 1.5 / 1500 = 100 entries.
        assert queue_entries(MemoryParams()) == 100

    def test_per_qp_bytes(self):
        breakdown = memory_overhead(MemoryParams())
        assert breakdown.per_qp_bytes == 120

    def test_pathmap_bytes(self):
        breakdown = memory_overhead(MemoryParams())
        assert breakdown.pathmap_bytes == 512  # 256 paths * 2 B

    def test_total_is_about_193_kb(self):
        """§4: 'yields M_total ≈ 193 KB'."""
        breakdown = memory_overhead(MemoryParams())
        assert breakdown.total_bytes == 512 + 120 * 100 * 16
        assert breakdown.total_kb() == pytest.approx(192.5, abs=1.0)

    def test_sram_fraction_under_one_percent(self):
        """The paper quotes 0.6% of 64 MB; the arithmetic of Eq. 4 gives
        ~0.3% — either way well under 1% (see EXPERIMENTS.md note)."""
        breakdown = memory_overhead(MemoryParams())
        assert breakdown.sram_fraction() < 0.01
        assert breakdown.sram_fraction(TOFINO_SRAM_BYTES) \
            == pytest.approx(192512 / TOFINO_SRAM_BYTES)


class TestScaling:
    def test_entries_scale_with_bandwidth(self):
        slow = queue_entries(MemoryParams(bandwidth_bps=100e9))
        fast = queue_entries(MemoryParams(bandwidth_bps=400e9))
        assert fast == 4 * slow

    def test_entries_scale_with_rtt(self):
        short = queue_entries(MemoryParams(rtt_last_s=1e-6))
        long = queue_entries(MemoryParams(rtt_last_s=4e-6))
        assert long == 4 * short

    def test_entries_shrink_with_mtu(self):
        small = queue_entries(MemoryParams(mtu_bytes=1500))
        big = queue_entries(MemoryParams(mtu_bytes=4500))
        assert big < small

    def test_total_scales_with_qps_and_nics(self):
        base = memory_overhead(MemoryParams()).total_bytes
        double_qp = memory_overhead(MemoryParams(n_qp=200)).total_bytes
        assert double_qp == pytest.approx(2 * base, rel=0.01)


class TestValidation:
    def test_f_must_exceed_one(self):
        with pytest.raises(ValueError):
            MemoryParams(expansion_factor=1.0)

    def test_counts_positive(self):
        with pytest.raises(ValueError):
            MemoryParams(n_qp=0)
