"""Tests for the ConWeave-style baseline (reorder buffer + rerouting)."""

import pytest

from repro.conweave.config import ConweaveConfig
from repro.conweave.dest import InOrderDest
from repro.harness.network import Network, NetworkConfig, TopologySpec
from repro.net.node import Device
from repro.net.packet import FlowKey, data_packet
from repro.sim.engine import Simulator, US
from repro.sim.rng import SimRng
from repro.switch.buffer import SharedBuffer
from repro.switch.ecn import EcnConfig, EcnMarker
from repro.switch.lb import EcmpLB
from repro.switch.switch import Switch

FLOW = FlowKey(0, 1)  # remote 0 -> local 1


class Sink(Device):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.psns = []

    def receive(self, packet, in_port):
        self.psns.append(packet.psn)


class DestHarness:
    def __init__(self, **cfg):
        self.sim = Simulator()
        self.tor = Switch(self.sim, "tor", lb=EcmpLB(),
                          buffer=SharedBuffer(10**6),
                          ecn_marker=EcnMarker(EcnConfig(), SimRng(0)))
        self.tor.down_nics.add(1)
        self.nic = Sink(self.sim, "nic")
        down = self.tor.add_port(1e10, 0)
        down.connect(self.nic)
        self.tor.routes[1] = [down]
        self.dest = InOrderDest(ConweaveConfig(**cfg))
        self.tor.add_middleware(self.dest)

    def data(self, psn):
        self.tor.receive(data_packet(FLOW, psn, 1000), None)

    def run(self, until=None):
        self.sim.run(until=until)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConweaveConfig(reorder_timeout_ns=0)
        with pytest.raises(ValueError):
            ConweaveConfig(buffer_packets=0)
        with pytest.raises(ValueError):
            ConweaveConfig(flip_interval_ns=0)


class TestInOrderDest:
    def test_in_order_passes_straight_through(self):
        h = DestHarness()
        for psn in range(4):
            h.data(psn)
        h.run()
        assert h.nic.psns == [0, 1, 2, 3]
        assert h.dest.buffered_packets == 0

    def test_ooo_held_until_gap_fills(self):
        h = DestHarness()
        h.data(0)
        h.data(2)       # held
        h.data(3)       # held
        h.run(until=1 * US)
        assert h.nic.psns == [0]
        h.data(1)       # unblocks the run
        h.run()
        assert h.nic.psns == [0, 1, 2, 3]

    def test_nic_never_sees_ooo_when_gaps_heal(self):
        h = DestHarness()
        for psn in (0, 3, 1, 4, 2, 5):
            h.data(psn)
        h.run()
        assert h.nic.psns == sorted(h.nic.psns)

    def test_timeout_flushes_episode(self):
        h = DestHarness(reorder_timeout_ns=10 * US)
        h.data(0)
        h.data(2)
        h.data(4)
        h.run()  # timer fires, flush in order
        assert h.nic.psns == [0, 2, 4]
        assert h.dest.timeout_flushes == 1

    def test_delivery_resumes_after_timeout_flush(self):
        h = DestHarness(reorder_timeout_ns=10 * US)
        h.data(0)
        h.data(2)
        h.run()
        h.data(3)  # next expected after the flush
        h.run()
        assert h.nic.psns == [0, 2, 3]

    def test_late_gap_packet_passes_after_flush(self):
        h = DestHarness(reorder_timeout_ns=10 * US)
        h.data(0)
        h.data(2)
        h.run()          # flush: expected -> 3
        h.data(1)        # the late straggler
        h.run()
        assert h.nic.psns == [0, 2, 1]

    def test_overflow_flushes(self):
        h = DestHarness(buffer_packets=4)
        h.data(0)
        for psn in (2, 3, 4, 5):
            h.data(psn)
        h.run()
        assert h.dest.overflow_flushes == 1
        assert h.nic.psns == [0, 2, 3, 4, 5]

    def test_peak_buffer_tracked(self):
        h = DestHarness()
        h.data(0)
        for psn in (2, 4, 6):
            h.data(psn)
        assert h.dest.peak_buffer == 3


class TestEndToEnd:
    TOPO = TopologySpec(kind="leaf_spine", num_tors=4, num_spines=2,
                        nics_per_tor=2, link_bandwidth_bps=25e9)

    def _network(self, scheme):
        from repro.switch.ecn import EcnConfig
        return Network(NetworkConfig(
            topology=self.TOPO, scheme=scheme, seed=5,
            ecn=EcnConfig(kmin_bytes=15_000, kmax_bytes=60_000)))

    def _ring(self, net, nbytes=400_000):
        for src, dst in ((0, 2), (2, 4), (4, 6), (6, 0),
                         (1, 3), (3, 5), (5, 7), (7, 1)):
            net.post_message(src, dst, nbytes)
        net.run(until_ns=60_000_000_000)

    def test_conweave_shields_the_nic_completely(self):
        net = self._network("conweave")
        self._ring(net)
        assert net.metrics.all_flows_done()
        # Reordering shield: the NIC never sees an OOO arrival, so the
        # commodity NACK pathology never starts.
        total_ooo = sum(f.receiver_ooo
                        for f in net.metrics.flows.values())
        assert total_ooo == 0
        assert net.metrics.nacks_generated == 0

    def test_spray_explodes_reordering_demand(self):
        """§2.3's quantitative claim: with 2-path rerouting the reorder
        buffer works only during rare reroute episodes; packet-level LB
        keeps it continuously engaged — an order of magnitude more
        buffering operations for the same traffic."""
        def work(scheme):
            net = self._network(scheme)
            self._ring(net)
            assert net.metrics.all_flows_done()
            total = sum(d.buffered_packets for d in net.conweave_dests)
            return total, net.metrics.data_packets_sent

        reroute_work, sent = work("conweave")
        spray_work, _ = work("conweave_spray")
        assert spray_work > 3 * reroute_work
        assert reroute_work < 0.1 * sent      # episodic
        assert spray_work > 0.25 * sent       # continuous

    def test_fail_link_tolerates_conweave_middleware(self):
        net = Network(NetworkConfig(topology=self.TOPO, scheme="conweave",
                                    seed=5))
        net.fail_link("tor0", "spine0")  # must not raise
        net.post_message(0, 2, 100_000)
        net.run(until_ns=30_000_000_000)
        assert net.metrics.all_flows_done()
