"""Unit tests for shared buffer accounting and ECN marking."""

import pytest

from repro.sim.rng import SimRng
from repro.switch.buffer import SharedBuffer
from repro.switch.ecn import EcnConfig, EcnMarker


class TestSharedBuffer:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SharedBuffer(0)

    def test_admit_until_full(self):
        buf = SharedBuffer(1000)
        assert buf.can_admit(600, 0)
        buf.reserve(600)
        assert not buf.can_admit(500, 0)
        assert buf.can_admit(400, 0)

    def test_release_frees_space(self):
        buf = SharedBuffer(1000)
        buf.reserve(800)
        buf.release(800)
        assert buf.used_bytes == 0
        assert buf.can_admit(1000, 0)

    def test_peak_tracking(self):
        buf = SharedBuffer(1000)
        buf.reserve(300)
        buf.reserve(400)
        buf.release(700)
        assert buf.peak_bytes == 700

    def test_per_port_cap(self):
        buf = SharedBuffer(10_000, per_port_cap_bytes=1000)
        assert buf.can_admit(900, 0)
        assert not buf.can_admit(900, 500)

    def test_underflow_is_programming_error(self):
        buf = SharedBuffer(100)
        with pytest.raises(AssertionError):
            buf.release(1)

    def test_overflow_without_check_is_programming_error(self):
        buf = SharedBuffer(100)
        with pytest.raises(AssertionError):
            buf.reserve(200)


class TestEcnConfig:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            EcnConfig(kmin_bytes=500, kmax_bytes=100)
        with pytest.raises(ValueError):
            EcnConfig(pmax=1.5)

    def test_defaults_are_sane(self):
        cfg = EcnConfig()
        assert 0 < cfg.kmin_bytes <= cfg.kmax_bytes
        assert 0 < cfg.pmax <= 1.0


class TestEcnMarker:
    def test_below_kmin_never_marks(self):
        marker = EcnMarker(EcnConfig(kmin_bytes=1000, kmax_bytes=2000),
                           SimRng(1))
        assert not any(marker.should_mark(999) for _ in range(100))

    def test_above_kmax_always_marks(self):
        marker = EcnMarker(EcnConfig(kmin_bytes=1000, kmax_bytes=2000),
                           SimRng(1))
        assert all(marker.should_mark(2001) for _ in range(100))

    def test_linear_region_marks_proportionally(self):
        cfg = EcnConfig(kmin_bytes=0, kmax_bytes=10_000, pmax=1.0)
        marker = EcnMarker(cfg, SimRng(5))
        hits = sum(marker.should_mark(5_000) for _ in range(4000))
        assert 0.45 < hits / 4000 < 0.55

    def test_counters(self):
        marker = EcnMarker(EcnConfig(kmin_bytes=0, kmax_bytes=1), SimRng(1))
        marker.should_mark(10)
        marker.should_mark(10)
        assert marker.evaluated == 2
        assert marker.marked == 2
