"""Property tests (hypothesis) for the LoadBalancer contract.

Every policy in the zoo must, for arbitrary packet sequences and
candidate sets: (1) return a member of ``candidates``, (2) be
deterministic under the same seed, and — for REPS — (3) never recycle an
entropy mapped onto a dead link, under randomized fault schedules.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.net.node import Device
from repro.net.packet import FlowKey, data_packet
from repro.sim.engine import Simulator
from repro.sim.rng import SimRng
from repro.switch.buffer import SharedBuffer
from repro.switch.ecn import EcnConfig, EcnMarker
from repro.switch.lb import (AdaptiveRoutingLB, EcmpLB, FlowletLB,
                             PrimeLB, RandomSprayLB, RepsLB,
                             SprinklersLB, SpritzLB)
from repro.switch.switch import Switch

LB_NAMES = ["ecmp", "rps", "flowlet", "ar", "reps", "prime", "spritz",
            "sprinklers"]


def make_lb(name, seed):
    if name == "ecmp":
        return EcmpLB()
    if name == "rps":
        return RandomSprayLB(SimRng(seed))
    if name == "flowlet":
        return FlowletLB(SimRng(seed), gap_ns=1000)
    if name == "ar":
        return AdaptiveRoutingLB(SimRng(seed))
    if name == "reps":
        return RepsLB(SimRng(seed))
    if name == "prime":
        return PrimeLB()
    if name == "spritz":
        return SpritzLB(SimRng(seed))
    if name == "sprinklers":
        return SprinklersLB()
    raise ValueError(name)


def make_switch(sim, n_ports=4):
    sw = Switch(sim, "psw", lb=EcmpLB(), buffer=SharedBuffer(10**6),
                ecn_marker=EcnMarker(EcnConfig(), SimRng(0)))
    sink = Device(sim, "sink")
    ports = []
    for _ in range(n_ports):
        port = sw.add_port(1e9, 0)
        port.connect(sink)
        ports.append(port)
    return sw, ports


# One step of a generated packet sequence: (flow src, flow dst, psn,
# udp sport, first candidate index, candidate count).
steps = st.lists(
    st.tuples(st.integers(0, 3), st.integers(4, 7),
              st.integers(0, 500), st.integers(0, 0xFFFF),
              st.integers(0, 2), st.integers(2, 4)),
    min_size=1, max_size=60)


def replay(lb, sw, ports, sequence):
    picks = []
    for src, dst, psn, sport, start, count in sequence:
        candidates = ports[start:start + count]
        if len(candidates) < 2:
            candidates = ports[:2]
        pkt = data_packet(FlowKey(src, dst), psn, 100, udp_sport=sport)
        picks.append(lb.select(sw, pkt, candidates))
        assert picks[-1] in candidates, \
            f"{lb.name} returned a non-candidate port"
    return picks


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(name=st.sampled_from(LB_NAMES), seed=st.integers(0, 2**16),
       sequence=steps)
def test_selected_port_is_always_a_candidate(name, seed, sequence):
    sim = Simulator()
    sw, ports = make_switch(sim, n_ports=6)
    replay(make_lb(name, seed), sw, ports, sequence)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(name=st.sampled_from(LB_NAMES), seed=st.integers(0, 2**16),
       sequence=steps)
def test_same_seed_same_decisions(name, seed, sequence):
    """Two instances with identical seeds replay identically — the
    invariant the arena's spec-hashed determinism rests on."""
    sim = Simulator()
    sw, ports = make_switch(sim, n_ports=6)
    a = replay(make_lb(name, seed), sw, ports, sequence)
    b = replay(make_lb(name, seed), sw, ports, sequence)
    assert a == b


# A REPS fault schedule interleaves sends, cumulative ACKs, port
# failures, and reconvergence (evict_dead) in arbitrary order.
reps_ops = st.lists(
    st.one_of(
        st.tuples(st.just("send"), st.integers(0, 3)),
        st.tuples(st.just("ack"), st.integers(0, 3)),
        st.tuples(st.just("fail"), st.integers(0, 3)),
        st.tuples(st.just("heal"), st.integers(0, 3)),
        st.tuples(st.just("evict"), st.just(0)),
    ),
    min_size=5, max_size=80)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**16), ops=reps_ops)
def test_reps_never_resurrects_dead_link_entropy(seed, ops):
    """ISSUE satellite: under randomized fault schedules a recycled
    (cache-hit) selection must always land on a live port, and eviction
    must leave no dead-port state behind."""
    sim = Simulator()
    sw, ports = make_switch(sim, n_ports=4)
    lb = RepsLB(SimRng(seed), cache_size=16)
    next_psn = {}
    flows = [FlowKey(0, 9), FlowKey(1, 9), FlowKey(2, 8), FlowKey(3, 8)]
    for op, arg in ops:
        if op == "send":
            flow = flows[arg]
            psn = next_psn.get(flow, 0)
            next_psn[flow] = psn + 1
            before = lb.recycled_hits
            pick = lb.select(sw, data_packet(flow, psn, 100), ports)
            if lb.recycled_hits > before:
                # Recycled entropy: must be a live port, always.
                assert pick.up, "REPS recycled entropy onto a dead link"
        elif op == "ack":
            flow = flows[arg]
            lb.on_ack(flow, next_psn.get(flow, 0))
        elif op == "fail":
            ports[arg].up = False
        elif op == "heal":
            ports[arg].up = True
        elif op == "evict":
            lb.evict_dead()
            for cache in lb._cache.values():
                for _, port in cache:
                    assert port.up, "evict_dead left a dead-port entry"
    # Final reconvergence leaves only live state regardless of schedule.
    lb.evict_dead()
    for cache in lb._cache.values():
        for _, port in cache:
            assert port.up
    for inflight in lb._inflight.values():
        for _, port in inflight.values():
            assert port.up
