"""Unit tests for the switch forwarding pipeline and middleware hooks."""

import pytest

from repro.net.node import Device
from repro.net.packet import FlowKey, ack_packet, data_packet
from repro.sim.engine import Simulator
from repro.sim.rng import SimRng
from repro.switch.buffer import SharedBuffer
from repro.switch.ecn import EcnConfig, EcnMarker
from repro.switch.lb import EcmpLB
from repro.switch.switch import Middleware, Switch


class SinkDevice(Device):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, packet, in_port):
        self.received.append(packet)


def make_switch(sim, *, buffer_bytes=10**6, ecn=None, name="sw"):
    return Switch(sim, name, lb=EcmpLB(), buffer=SharedBuffer(buffer_bytes),
                  ecn_marker=EcnMarker(ecn or EcnConfig(), SimRng(0)))


def wire(sim, sw, dst_nic_ids):
    """Give the switch one port per NIC id, each to its own sink."""
    sinks = {}
    for nic in dst_nic_ids:
        sink = SinkDevice(sim, f"sink{nic}")
        port = sw.add_port(1e9, 0)
        port.connect(sink)
        sw.routes[nic] = [port]
        sinks[nic] = sink
    return sinks


class TestForwarding:
    def test_forwards_on_single_route(self):
        sim = Simulator()
        sw = make_switch(sim)
        sinks = wire(sim, sw, [5])
        sw.receive(data_packet(FlowKey(0, 5), 0, 100), None)
        sim.run()
        assert len(sinks[5].received) == 1

    def test_missing_route_raises(self):
        sim = Simulator()
        sw = make_switch(sim)
        with pytest.raises(LookupError):
            sw.receive(data_packet(FlowKey(0, 99), 0, 100), None)

    def test_multi_candidate_uses_lb(self):
        sim = Simulator()
        sw = make_switch(sim)
        sink = SinkDevice(sim, "sink")
        ports = []
        for _ in range(4):
            port = sw.add_port(1e9, 0)
            port.connect(sink)
            ports.append(port)
        sw.routes[7] = ports
        # Many flows -> ECMP spreads across candidates.
        for src in range(32):
            sw.receive(data_packet(FlowKey(src, 7, 0), 0, 100,
                                   udp_sport=src * 997), None)
        sim.run()
        used = [p for p in ports if p.packets_sent > 0]
        assert len(used) > 1

    def test_control_packets_take_deterministic_path(self):
        sim = Simulator()
        sw = make_switch(sim)
        sink = SinkDevice(sim, "sink")
        ports = []
        for _ in range(4):
            port = sw.add_port(1e9, 0)
            port.connect(sink)
            ports.append(port)
        sw.routes[1] = ports
        for _ in range(20):
            sw.receive(ack_packet(FlowKey(1, 2), 0), None)
        sim.run()
        used = [p for p in ports if p.packets_sent > 0]
        assert len(used) == 1


class TestMiddleware:
    def test_blocking_middleware_consumes_packet(self):
        class BlockData(Middleware):
            def on_packet(self, switch, packet, in_port):
                return not packet.is_data

        sim = Simulator()
        sw = make_switch(sim)
        sinks = wire(sim, sw, [1])
        sw.add_middleware(BlockData())
        sw.receive(data_packet(FlowKey(0, 1), 0, 100), None)
        sw.receive(ack_packet(FlowKey(1, 0), 0), None)
        sim.run()
        assert len(sinks[1].received) == 1
        assert sinks[1].received[0].is_control

    def test_select_port_override(self):
        class PinLast(Middleware):
            def select_port(self, switch, packet, candidates):
                return candidates[-1]

        sim = Simulator()
        sw = make_switch(sim)
        sink = SinkDevice(sim, "sink")
        ports = []
        for _ in range(3):
            port = sw.add_port(1e9, 0)
            port.connect(sink)
            ports.append(port)
        sw.routes[1] = ports
        sw.add_middleware(PinLast())
        for psn in range(10):
            sw.receive(data_packet(FlowKey(0, 1), psn, 100), None)
        sim.run()
        assert ports[-1].packets_sent == 10
        assert ports[0].packets_sent == 0

    def test_middleware_chain_order(self):
        calls = []

        class Tag(Middleware):
            def __init__(self, label):
                self.label = label

            def on_packet(self, switch, packet, in_port):
                calls.append(self.label)
                return True

        sim = Simulator()
        sw = make_switch(sim)
        wire(sim, sw, [1])
        sw.add_middleware(Tag("first"))
        sw.add_middleware(Tag("second"))
        sw.receive(data_packet(FlowKey(0, 1), 0, 100), None)
        assert calls == ["first", "second"]


class TestBufferIntegration:
    def test_data_dropped_when_buffer_full(self):
        sim = Simulator()
        sw = make_switch(sim, buffer_bytes=2000)
        sinks = wire(sim, sw, [1])
        for psn in range(10):
            sw.receive(data_packet(FlowKey(0, 1), psn, 1000), None)
        sim.run()
        # ~1 in flight + ~1 queued within budget; the rest dropped.
        assert len(sinks[1].received) < 10
        assert sw.buffer.rejections == 0  # rejections counted at port level
        port = sw.routes[1][0]
        assert port.packets_dropped > 0

    def test_buffer_released_after_transmit(self):
        sim = Simulator()
        sw = make_switch(sim, buffer_bytes=10**6)
        wire(sim, sw, [1])
        for psn in range(5):
            sw.receive(data_packet(FlowKey(0, 1), psn, 1000), None)
        sim.run()
        assert sw.buffer.used_bytes == 0

    def test_ecn_marks_under_backlog(self):
        sim = Simulator()
        ecn = EcnConfig(kmin_bytes=1_000, kmax_bytes=3_000, pmax=1.0)
        sw = make_switch(sim, ecn=ecn)
        sinks = wire(sim, sw, [1])
        for psn in range(20):
            sw.receive(data_packet(FlowKey(0, 1), psn, 1000), None)
        sim.run()
        assert any(p.ecn_marked for p in sinks[1].received)

    def test_per_switch_hash_salts_differ(self):
        sim = Simulator()
        a = make_switch(sim, name="tor0")
        b = make_switch(sim, name="tor1")
        assert (a.hash_salt, a.hash_rot) != (b.hash_salt, b.hash_rot)
