"""Unit + integration tests for Priority Flow Control."""

import pytest

from repro.harness.network import Network, NetworkConfig, TopologySpec
from repro.net.node import Device
from repro.net.packet import FlowKey, ack_packet, data_packet
from repro.net.port import Port
from repro.sim.engine import Simulator
from repro.sim.rng import SimRng
from repro.switch.buffer import SharedBuffer
from repro.switch.ecn import EcnConfig, EcnMarker
from repro.switch.lb import EcmpLB
from repro.switch.pfc import PfcConfig, PfcController
from repro.switch.switch import Switch


class TestPfcConfig:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            PfcConfig(xoff_bytes=100, xon_bytes=200)
        with pytest.raises(ValueError):
            PfcConfig(xoff_bytes=100, xon_bytes=0)


class TestPortPause:
    def _port(self, sim):
        src = Device(sim, "src")
        dst = _Sink(sim, "dst")
        port = Port(sim, src, bandwidth_bps=1e9, delay_ns=0)
        port.connect(dst)
        return port, dst

    def test_paused_data_waits(self):
        sim = Simulator()
        port, dst = self._port(sim)
        port.pause_data()
        port.enqueue(data_packet(FlowKey(0, 1), 0, 100))
        sim.run()
        assert dst.received == []
        port.resume_data()
        sim.run()
        assert len(dst.received) == 1

    def test_control_flows_while_paused(self):
        sim = Simulator()
        port, dst = self._port(sim)
        port.pause_data()
        port.enqueue(data_packet(FlowKey(0, 1), 0, 100))
        port.enqueue(ack_packet(FlowKey(1, 0), 3))
        sim.run()
        assert len(dst.received) == 1
        assert dst.received[0].is_control

    def test_pause_mid_stream(self):
        sim = Simulator()
        port, dst = self._port(sim)
        for psn in range(5):
            port.enqueue(data_packet(FlowKey(0, 1), psn, 1000))
        sim.run(until=1_000)  # first packet (8 us serialization) pending
        port.pause_data()
        sim.run()
        # The in-flight packet completes; the rest are held.
        assert len(dst.received) == 1
        port.resume_data()
        sim.run()
        assert len(dst.received) == 5


class _Sink(Device):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, packet, in_port):
        self.received.append(packet)


class TestPfcController:
    def _setup(self, xoff=3000, xon=1500):
        sim = Simulator()
        down = Switch(sim, "down", lb=EcmpLB(),
                      buffer=SharedBuffer(10**6),
                      ecn_marker=EcnMarker(EcnConfig(), SimRng(0)))
        down.pfc = PfcController(sim, down, PfcConfig(xoff, xon))
        # Slow egress so ingress occupancy builds.
        sink = _Sink(sim, "sink")
        egress = down.add_port(1e8, 0)   # 100 Mbps
        egress.connect(sink)
        down.routes[1] = [egress]
        # The upstream transmitter whose port will be paused.
        up = Device(sim, "up")
        up_port = Port(sim, up, bandwidth_bps=1e9, delay_ns=100)
        up_port.connect(down)
        return sim, down, up_port

    def test_xoff_pauses_upstream(self):
        sim, down, up_port = self._setup()
        for psn in range(5):
            down.receive(data_packet(FlowKey(0, 1), psn, 1000), up_port)
        sim.run(until=200)  # let the PAUSE propagate
        assert up_port.data_paused
        assert down.pfc.pauses_sent == 1

    def test_drain_resumes_upstream(self):
        sim, down, up_port = self._setup()
        for psn in range(5):
            down.receive(data_packet(FlowKey(0, 1), psn, 1000), up_port)
        sim.run()
        assert not up_port.data_paused
        assert down.pfc.resumes_sent == 1
        assert down.pfc.ingress_occupancy(up_port) == 0

    def test_control_packets_not_charged(self):
        sim, down, up_port = self._setup()
        down.routes[0] = down.routes[1]
        for _ in range(100):
            down.receive(ack_packet(FlowKey(1, 0), 0), up_port)
        assert down.pfc.ingress_occupancy(up_port) == 0
        assert not down.pfc.paused_ports

    def test_consumed_packet_credited(self):
        """A packet eaten by middleware must not leak ingress bytes."""
        from repro.switch.switch import Middleware

        class EatData(Middleware):
            def on_packet(self, switch, packet, in_port):
                return not packet.is_data

        sim, down, up_port = self._setup()
        down.add_middleware(EatData())
        down.receive(data_packet(FlowKey(0, 1), 0, 1000), up_port)
        assert down.pfc.ingress_occupancy(up_port) == 0


class TestLosslessFabric:
    def test_incast_with_tiny_buffer_lossless(self):
        """3:1 incast into a switch with a buffer far below the incast
        volume: without PFC packets drop; with PFC the fabric backs
        pressure up into the senders and nothing is lost."""
        topo = TopologySpec(kind="leaf_spine", num_tors=2, num_spines=2,
                            nics_per_tor=4, link_bandwidth_bps=25e9)

        def run(pfc):
            net = Network(NetworkConfig(
                topology=topo, scheme="ecmp", buffer_bytes=150_000,
                pfc=pfc, seed=2))
            for src in (0, 1, 2):
                net.post_message(src, 4, 400_000)
            net.run(until_ns=60_000_000_000)
            return net

        lossy = run(None)
        assert lossy.metrics.drops > 0          # buffer too small
        assert lossy.metrics.all_flows_done()   # recovered via retx

        lossless = run(PfcConfig(xoff_bytes=40_000, xon_bytes=20_000))
        assert lossless.metrics.drops == 0
        assert lossless.metrics.all_flows_done()
        total_pauses = sum(s.pfc.pauses_sent
                           for s in lossless.topology.switches)
        assert total_pauses > 0

    def test_pfc_with_themis(self):
        """Lossless + Themis co-exist: still blocks invalid NACKs."""
        topo = TopologySpec(kind="leaf_spine", num_tors=4, num_spines=2,
                            nics_per_tor=2, link_bandwidth_bps=25e9)
        net = Network(NetworkConfig(
            topology=topo, scheme="themis",
            pfc=PfcConfig(xoff_bytes=60_000, xon_bytes=30_000), seed=1))
        for src, dst in ((0, 2), (2, 4), (4, 6), (6, 0),
                         (1, 3), (3, 5), (5, 7), (7, 1)):
            net.post_message(src, dst, 500_000)
        net.run(until_ns=60_000_000_000)
        assert net.metrics.all_flows_done()
        assert net.metrics.drops == 0
