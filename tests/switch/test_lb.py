"""Unit tests for load balancers and the linear ECMP hash."""

import pytest

from repro.net.node import Device
from repro.net.packet import FlowKey, data_packet
from repro.sim.engine import Simulator
from repro.sim.rng import SimRng
from repro.switch.buffer import SharedBuffer
from repro.switch.ecn import EcnConfig, EcnMarker
from repro.switch.lb import (AdaptiveRoutingLB, EcmpLB, RandomSprayLB,
                             ecmp_hash, ecmp_index, rotl16, rotr16)
from repro.switch.switch import Switch


def make_switch(sim, name="sw", n_ports=4):
    sw = Switch(sim, name, lb=EcmpLB(), buffer=SharedBuffer(10**6),
                ecn_marker=EcnMarker(EcnConfig(), SimRng(0)))
    sink = Device(sim, "sink")
    ports = []
    for _ in range(n_ports):
        port = sw.add_port(1e9, 0)
        port.connect(sink)
        ports.append(port)
    return sw, ports


class TestRotations:
    def test_rotl_rotr_inverse(self):
        for value in (0x0001, 0x8000, 0xBEEF, 0xFFFF):
            for amount in range(17):
                assert rotr16(rotl16(value, amount), amount) == value

    def test_rotl_wraps(self):
        assert rotl16(0x8000, 1) == 0x0001
        assert rotl16(0x0001, 16) == 0x0001


class TestEcmpHash:
    def test_deterministic(self):
        assert ecmp_hash(1, 2, 3, 4) == ecmp_hash(1, 2, 3, 4)

    def test_sensitive_to_every_field(self):
        base = ecmp_hash(1, 2, 3, 400)
        assert ecmp_hash(9, 2, 3, 400) != base
        assert ecmp_hash(1, 9, 3, 400) != base
        assert ecmp_hash(1, 2, 9, 400) != base
        assert ecmp_hash(1, 2, 3, 900) != base

    def test_salt_changes_hash(self):
        assert ecmp_hash(1, 2, 3, 4, salt=7) != ecmp_hash(1, 2, 3, 4)

    def test_linearity_in_sport(self):
        """hash(sport ^ d) == hash(sport) ^ rotl16(d, rot) — the property
        the PathMap construction (Fig. 3 / [37]) relies on."""
        for rot in (1, 5, 11):
            for delta in (0x0001, 0x00F0, 0xABCD):
                base = ecmp_hash(10, 20, 1, 5555, salt=42, rot=rot)
                shifted = ecmp_hash(10, 20, 1, 5555 ^ delta, salt=42,
                                    rot=rot)
                assert shifted == base ^ rotl16(delta, rot)

    def test_index_distribution_roughly_uniform(self):
        # Random-looking sports, as NICs assign them per QP.
        counts = [0] * 8
        for i in range(4000):
            sport = (i * 7919 + 13) & 0xFFFF
            pkt = data_packet(FlowKey(3, 7), 0, 100, udp_sport=sport)
            counts[ecmp_index(pkt, 8)] += 1
        assert min(counts) > 300


class TestEcmpLB:
    def test_flow_sticks_to_one_port(self):
        sim = Simulator()
        sw, ports = make_switch(sim)
        lb = EcmpLB()
        picks = {lb.select(sw, data_packet(FlowKey(1, 2), psn, 100,
                                           udp_sport=777), ports)
                 for psn in range(50)}
        assert len(picks) == 1

    def test_different_flows_spread(self):
        sim = Simulator()
        sw, ports = make_switch(sim, n_ports=8)
        lb = EcmpLB()
        picks = {lb.select(sw, data_packet(FlowKey(src, 99, 0), 0, 100,
                                           udp_sport=src * 131), ports)
                 for src in range(64)}
        assert len(picks) > 3


class TestRandomSprayLB:
    def test_sprays_same_flow_across_ports(self):
        sim = Simulator()
        sw, ports = make_switch(sim)
        lb = RandomSprayLB(SimRng(1))
        picks = {lb.select(sw, data_packet(FlowKey(1, 2), psn, 100), ports)
                 for psn in range(100)}
        assert len(picks) == 4


class TestAdaptiveRoutingLB:
    def test_avoids_backlogged_port(self):
        sim = Simulator()
        sw, ports = make_switch(sim)
        lb = AdaptiveRoutingLB(SimRng(1), bin_bytes=1000)
        # Pile several bins worth of backlog on port 0.
        for i in range(10):
            ports[0].enqueue(data_packet(FlowKey(0, 1), i, 1000))
        picks = [lb.select(sw, data_packet(FlowKey(1, 2), p, 100), ports)
                 for p in range(60)]
        assert ports[0] not in picks

    def test_ties_spread_randomly(self):
        sim = Simulator()
        sw, ports = make_switch(sim)
        lb = AdaptiveRoutingLB(SimRng(2))
        picks = {lb.select(sw, data_packet(FlowKey(1, 2), p, 100), ports)
                 for p in range(100)}
        assert len(picks) == 4

    def test_bin_validation(self):
        with pytest.raises(ValueError):
            AdaptiveRoutingLB(SimRng(0), bin_bytes=0)
