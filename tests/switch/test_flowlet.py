"""Unit tests for the flowlet load balancer (§2.3 baseline)."""

import pytest

from repro.net.node import Device
from repro.net.packet import FlowKey, data_packet
from repro.sim.engine import Simulator, US
from repro.sim.rng import SimRng
from repro.switch.buffer import SharedBuffer
from repro.switch.ecn import EcnConfig, EcnMarker
from repro.switch.lb import EcmpLB, FlowletLB
from repro.switch.switch import Switch


def make_switch(sim, n_ports=4):
    sw = Switch(sim, "sw", lb=EcmpLB(), buffer=SharedBuffer(10**6),
                ecn_marker=EcnMarker(EcnConfig(), SimRng(0)))
    sink = Device(sim, "sink")
    ports = []
    for _ in range(n_ports):
        port = sw.add_port(1e9, 0)
        port.connect(sink)
        ports.append(port)
    return sw, ports


class TestFlowletLB:
    def test_gap_validation(self):
        with pytest.raises(ValueError):
            FlowletLB(SimRng(0), gap_ns=-1)

    def test_back_to_back_packets_stick_to_one_path(self):
        """No gap => one flowlet => one path (order preserved)."""
        sim = Simulator()
        sw, ports = make_switch(sim)
        lb = FlowletLB(SimRng(1), gap_ns=10 * US)
        picks = set()
        for psn in range(50):
            picks.add(lb.select(sw, data_packet(FlowKey(0, 9), psn, 100),
                                ports))
            # advance 1 us between packets: below the gap
            sim.schedule(1 * US, lambda: None)
            sim.run()
        assert len(picks) == 1
        assert lb.flowlet_switches == 0

    def test_gap_allows_path_change(self):
        sim = Simulator()
        sw, ports = make_switch(sim)
        lb = FlowletLB(SimRng(2), gap_ns=5 * US)
        seen = set()
        for psn in range(40):
            seen.add(lb.select(sw, data_packet(FlowKey(0, 9), psn, 100),
                               ports))
            sim.schedule(20 * US, lambda: None)  # gap > flowlet timeout
            sim.run()
        assert len(seen) > 1

    def test_new_flowlet_prefers_least_loaded(self):
        sim = Simulator()
        sw, ports = make_switch(sim)
        lb = FlowletLB(SimRng(3), gap_ns=0)  # every packet a new flowlet
        for i in range(10):
            ports[0].enqueue(data_packet(FlowKey(5, 6), i, 1000))
        pick = lb.select(sw, data_packet(FlowKey(0, 9), 0, 100), ports)
        assert pick is not ports[0]

    def test_distinct_flows_tracked_separately(self):
        sim = Simulator()
        sw, ports = make_switch(sim)
        lb = FlowletLB(SimRng(4), gap_ns=10 * US)
        a = lb.select(sw, data_packet(FlowKey(0, 9), 0, 100), ports)
        b = lb.select(sw, data_packet(FlowKey(1, 9), 0, 100), ports)
        assert lb._state[FlowKey(0, 9)][0] == ports.index(a)
        assert lb._state[FlowKey(1, 9)][0] == ports.index(b)


class TestFlowletGapSemantics:
    """Regression pin for the documented ``last_ns`` re-stamping: the
    inactivity gap is measured from the *previous packet*, not from the
    flowlet's first packet (CONGA/LetFlow semantics)."""

    def test_gap_measured_from_previous_packet_not_flowlet_start(self):
        """Sub-gap spacing whose cumulative span vastly exceeds gap_ns
        must never end the flowlet — if last_ns were stamped only at
        flowlet start, the flowlet would expire after gap_ns of age."""
        sim = Simulator()
        sw, ports = make_switch(sim)
        lb = FlowletLB(SimRng(11), gap_ns=5 * US)
        first = lb.select(sw, data_packet(FlowKey(0, 9), 0, 100), ports)
        # 50 packets at 2 us spacing: total span 100 us = 20x gap_ns.
        for psn in range(1, 51):
            sim.schedule(2 * US, lambda: None)
            sim.run()
            pick = lb.select(sw, data_packet(FlowKey(0, 9), psn, 100),
                             ports)
            assert pick is first
        assert lb.flowlet_switches == 0

    def test_single_quiet_gap_ends_the_flowlet(self):
        """One inter-packet gap > gap_ns starts a new flowlet, which
        lands on the now-least-loaded port and counts the switch."""
        sim = Simulator()
        sw, ports = make_switch(sim)
        lb = FlowletLB(SimRng(12), gap_ns=5 * US)
        first = lb.select(sw, data_packet(FlowKey(0, 9), 0, 100), ports)
        sim.schedule(20 * US, lambda: None)  # > gap_ns of quiet
        sim.run()
        # Load the old path so the post-gap decision must move off it.
        for i in range(10):
            first.enqueue(data_packet(FlowKey(5, 6), i, 1000))
        pick = lb.select(sw, data_packet(FlowKey(0, 9), 1, 100), ports)
        assert pick is not first
        assert lb.flowlet_switches == 1


class TestFlowletEndToEnd:
    def test_rnic_pacing_never_splits_flowlets(self):
        """§2.3: hardware-paced RNIC streams have no gaps, so the flowlet
        LB behaves per-flow — zero path switches over a whole message."""
        from repro.harness.network import (Network, NetworkConfig,
                                           TopologySpec)
        topo = TopologySpec(kind="leaf_spine", num_tors=2, num_spines=4,
                            nics_per_tor=1, link_bandwidth_bps=25e9)
        net = Network(NetworkConfig(topology=topo, scheme="flowlet",
                                    flowlet_gap_ns=50 * US))
        net.post_message(0, 1, 2_000_000)
        net.run(until_ns=30_000_000_000)
        assert net.metrics.all_flows_done()
        switches = sum(s.lb.flowlet_switches
                       for s in net.topology.switches
                       if isinstance(s.lb, FlowletLB))
        assert switches == 0
        assert net.metrics.nacks_generated == 0  # order preserved
