"""Unit tests for the adaptive-spraying baseline zoo (REPS, PRIME,
Spritz, Sprinklers)."""

import pytest

from repro.net.node import Device
from repro.net.packet import FlowKey, data_packet
from repro.sim.engine import Simulator
from repro.sim.rng import SimRng
from repro.switch.buffer import SharedBuffer
from repro.switch.ecn import EcnConfig, EcnMarker
from repro.switch.lb import (EcmpLB, PrimeLB, RepsLB, SprinklersLB,
                             SpritzLB)
from repro.switch.switch import Switch


def make_switch(sim, name="sw", n_ports=4):
    sw = Switch(sim, name, lb=EcmpLB(), buffer=SharedBuffer(10**6),
                ecn_marker=EcnMarker(EcnConfig(), SimRng(0)))
    sink = Device(sim, "sink")
    ports = []
    for _ in range(n_ports):
        port = sw.add_port(1e9, 0)
        port.connect(sink)
        ports.append(port)
    return sw, ports


class TestRepsLB:
    def test_cache_size_validation(self):
        with pytest.raises(ValueError):
            RepsLB(SimRng(0), cache_size=0)

    def test_fresh_draws_before_any_ack(self):
        sim = Simulator()
        sw, ports = make_switch(sim)
        lb = RepsLB(SimRng(1))
        flow = FlowKey(0, 9)
        for psn in range(10):
            pick = lb.select(sw, data_packet(flow, psn, 100), ports)
            assert pick in ports
        assert lb.fresh_draws == 10
        assert lb.recycled_hits == 0

    def test_ack_recycles_entropy(self):
        """ACKed (entropy, port) pairs are reused for later packets."""
        sim = Simulator()
        sw, ports = make_switch(sim)
        lb = RepsLB(SimRng(2))
        flow = FlowKey(0, 9)
        first = [lb.select(sw, data_packet(flow, psn, 100), ports)
                 for psn in range(8)]
        lb.on_ack(flow, 8)  # cumulative: everything below 8 delivered
        second = [lb.select(sw, data_packet(flow, psn, 100), ports)
                  for psn in range(8, 16)]
        assert lb.recycled_hits == 8
        # Recycling preserves the ACKed port sequence in order.
        assert second == first

    def test_ack_only_covers_psns_below_epsn(self):
        sim = Simulator()
        sw, ports = make_switch(sim)
        lb = RepsLB(SimRng(3))
        flow = FlowKey(0, 9)
        for psn in range(6):
            lb.select(sw, data_packet(flow, psn, 100), ports)
        lb.on_ack(flow, 3)
        lb.select(sw, data_packet(flow, 6, 100), ports)
        assert lb.recycled_hits == 1
        assert len(lb._inflight[flow]) == 4  # psn 3,4,5 + psn 6

    def test_retransmit_overwrites_inflight_entropy(self):
        """A retransmitted PSN discards the entropy that lost the
        packet: only the successful attempt's entropy can recycle."""
        sim = Simulator()
        sw, ports = make_switch(sim)
        lb = RepsLB(SimRng(4))
        flow = FlowKey(0, 9)
        lb.select(sw, data_packet(flow, 0, 100), ports)
        retx_pick = lb.select(sw, data_packet(flow, 0, 100,
                                              is_retx=True), ports)
        assert len(lb._inflight[flow]) == 1
        lb.on_ack(flow, 1)
        assert lb.select(sw, data_packet(flow, 1, 100),
                         ports) is retx_pick

    def test_evict_dead_purges_cache_and_inflight(self):
        sim = Simulator()
        sw, ports = make_switch(sim)
        lb = RepsLB(SimRng(5))
        flow = FlowKey(0, 9)
        for psn in range(20):
            lb.select(sw, data_packet(flow, psn, 100), ports)
        lb.on_ack(flow, 10)
        dead = ports[0]
        dead.up = False
        lb.evict_dead()
        for entry in lb._cache[flow]:
            assert entry[1] is not dead
        for _, port in lb._inflight[flow].values():
            assert port is not dead

    def test_select_skips_dead_cached_entries_lazily(self):
        """Between failure and reconvergence the cache may still hold a
        dead port; select must never recycle it."""
        sim = Simulator()
        sw, ports = make_switch(sim)
        lb = RepsLB(SimRng(6))
        flow = FlowKey(0, 9)
        for psn in range(30):
            lb.select(sw, data_packet(flow, psn, 100), ports)
        lb.on_ack(flow, 30)
        ports[0].up = False  # no evict_dead(): lazy path
        live = ports[1:]
        for psn in range(30, 60):
            pick = lb.select(sw, data_packet(flow, psn, 100), live)
            assert pick in live

    def test_dead_port_ack_not_recycled(self):
        """An ACK covering a packet sent on a now-dead port discards
        that entropy instead of caching it."""
        sim = Simulator()
        sw, ports = make_switch(sim)
        lb = RepsLB(SimRng(7))
        flow = FlowKey(0, 9)
        picks = [lb.select(sw, data_packet(flow, psn, 100), ports)
                 for psn in range(12)]
        picks[0].up = False
        lb.on_ack(flow, 12)
        for entry in lb._cache[flow]:
            assert entry[1].up


class TestPrimeLB:
    def test_probe_validation(self):
        with pytest.raises(ValueError):
            PrimeLB(probes=0)
        with pytest.raises(ValueError):
            PrimeLB(probes=5)
        with pytest.raises(ValueError):
            PrimeLB(bin_bytes=0)

    def test_stateless_determinism(self):
        """No RNG: two instances produce identical pick sequences."""
        sim = Simulator()
        sw, ports = make_switch(sim)
        a, b = PrimeLB(), PrimeLB()
        flow = FlowKey(0, 9)
        for psn in range(64):
            pkt = data_packet(flow, psn, 100, udp_sport=4242)
            assert a.select(sw, pkt, ports) is b.select(sw, pkt, ports)

    def test_consecutive_packets_spread(self):
        """The rolling entropy part decorrelates consecutive packets of
        one flow across ports (unlike ECMP)."""
        sim = Simulator()
        sw, ports = make_switch(sim)
        lb = PrimeLB()
        flow = FlowKey(0, 9)
        picks = {lb.select(sw, data_packet(flow, psn, 100,
                                           udp_sport=4242), ports)
                 for psn in range(64)}
        assert len(picks) > 1

    def test_probes_avoid_congested_port(self):
        """With a heavily-backlogged port, the multi-probe minimum
        steers most traffic elsewhere."""
        sim = Simulator()
        sw, ports = make_switch(sim, n_ports=2)
        lb = PrimeLB(probes=2, bin_bytes=1000)
        for i in range(50):
            ports[0].enqueue(data_packet(FlowKey(5, 6), i, 1000))
        flow = FlowKey(0, 9)
        picks = [lb.select(sw, data_packet(flow, psn, 100,
                                           udp_sport=7), ports)
                 for psn in range(100)]
        assert picks.count(ports[1]) > picks.count(ports[0])


class TestSpritzLB:
    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            SpritzLB(SimRng(0), alpha=0.0)
        with pytest.raises(ValueError):
            SpritzLB(SimRng(0), alpha=1.5)

    def test_uniform_when_unloaded(self):
        sim = Simulator()
        sw, ports = make_switch(sim)
        lb = SpritzLB(SimRng(1))
        flow = FlowKey(0, 9)
        picks = {lb.select(sw, data_packet(flow, psn, 100), ports)
                 for psn in range(100)}
        assert picks == set(ports)

    def test_persistent_backlog_downweighted(self):
        """A port with standing backlog receives a sub-uniform share —
        the path-state memory plain RPS lacks."""
        sim = Simulator()
        sw, ports = make_switch(sim, n_ports=2)
        lb = SpritzLB(SimRng(2), mtu_bytes=1000)
        for i in range(20):
            ports[0].enqueue(data_packet(FlowKey(5, 6), i, 1000))
        flow = FlowKey(0, 9)
        picks = [lb.select(sw, data_packet(flow, psn, 100), ports)
                 for psn in range(400)]
        share = picks.count(ports[0]) / len(picks)
        assert share < 0.35  # uniform would be 0.5

    def test_ewma_recovers_after_drain(self):
        """Once the backlog drains, the EWMA decays and the port's
        share recovers (bad paths are re-probed, not blacklisted)."""
        sim = Simulator()
        sw, ports = make_switch(sim, n_ports=2)
        lb = SpritzLB(SimRng(3), alpha=0.5, mtu_bytes=1000)
        for i in range(20):
            ports[0].enqueue(data_packet(FlowKey(5, 6), i, 1000))
        flow = FlowKey(0, 9)
        for psn in range(10):
            lb.select(sw, data_packet(flow, psn, 100), ports)
        loaded_score = lb._ewma[ports[0]]
        ports[0].flush("test-drain")
        for psn in range(10, 40):
            lb.select(sw, data_packet(flow, psn, 100), ports)
        assert lb._ewma[ports[0]] < loaded_score / 4


class TestSprinklersLB:
    def test_stripe_validation(self):
        with pytest.raises(ValueError):
            SprinklersLB(max_stripe_log2=-1)
        with pytest.raises(ValueError):
            SprinklersLB(max_stripe_log2=13)

    def test_deterministic(self):
        sim = Simulator()
        sw, ports = make_switch(sim)
        a, b = SprinklersLB(), SprinklersLB()
        flow = FlowKey(0, 9)
        for psn in range(200):
            pkt = data_packet(flow, psn, 100, udp_sport=4242)
            assert a.select(sw, pkt, ports) is b.select(sw, pkt, ports)

    def test_psns_within_stripe_share_port(self):
        """Consecutive PSNs inside one stripe take one egress (bounded
        reordering); different stripes may move."""
        sim = Simulator()
        sw, ports = make_switch(sim)
        lb = SprinklersLB()
        # Pick a flow whose hashed stripe size exceeds one packet.
        lb.select(sw, data_packet(FlowKey(3, 9), 0, 100), ports)
        flow = next((f for src in range(64)
                     for f in [FlowKey(src, 9)]
                     if lb.select(sw, data_packet(f, 0, 100), ports)
                     and lb._stripe[f][0] >= 2), None)
        assert flow is not None
        stripe_size = 1 << lb._stripe[flow][0]
        picks = {lb.select(sw, data_packet(flow, psn, 100), ports)
                 for psn in range(stripe_size)}
        assert len(picks) == 1

    def test_flow_spreads_across_stripes(self):
        """Over many stripes the flow uses more than one uplink."""
        sim = Simulator()
        sw, ports = make_switch(sim)
        lb = SprinklersLB(max_stripe_log2=2)
        flow = FlowKey(0, 9)
        picks = {lb.select(sw, data_packet(flow, psn, 100), ports)
                 for psn in range(512)}
        assert len(picks) > 1

    def test_flows_get_different_stripe_sizes(self):
        sim = Simulator()
        sw, ports = make_switch(sim)
        lb = SprinklersLB(max_stripe_log2=6)
        shifts = set()
        for src in range(32):
            flow = FlowKey(src, 99)
            lb.select(sw, data_packet(flow, 0, 100), ports)
            shifts.add(lb._stripe[flow][0])
        assert len(shifts) > 1
