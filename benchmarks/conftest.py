"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables or figures and
prints the rows/series it reports.  pytest-benchmark measures the wall
time of the regeneration; the assertions check the *shape* targets listed
in DESIGN.md §4 (who wins, roughly by how much, where crossovers fall).

Run with:  pytest benchmarks/ --benchmark-only -s
Full-size: REPRO_EVAL_SCALE=paper pytest benchmarks/ --benchmark-only -s
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(name): marks which paper figure/table a "
        "benchmark regenerates")


@pytest.fixture(scope="session")
def results_dir(tmp_path_factory):
    """Directory where benchmarks drop their JSON payloads."""
    return tmp_path_factory.mktemp("results")
