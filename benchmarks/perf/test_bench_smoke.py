"""Smoke tests for the perf-benchmark harness (fast; runs in tier-1).

These do not measure anything meaningful — they pin the harness
machinery: scenario builders construct, quick runs complete, the A/B
event-count assertion fires on real mismatches, and the JSON document
keeps the schema downstream tooling reads.
"""

import json

import pytest

from repro.harness.bench import (SCENARIOS, ScenarioResult, run_bench,
                                 run_scenario)


@pytest.mark.parametrize("name", SCENARIOS)
def test_each_scenario_completes_in_quick_mode(name):
    result = run_scenario(name, quick=True)
    assert isinstance(result, ScenarioResult)
    assert result.completed, f"{name} did not finish before the deadline"
    assert result.events > 0 and result.events_per_sec > 0
    assert 0 < result.sim_time_ns


def test_engines_agree_on_event_count_in_quick_mode():
    cal = run_scenario("lossy", quick=True)
    heap = run_scenario("lossy", quick=True, engine="heap")
    assert cal.events == heap.events
    assert cal.sim_time_ns == heap.sim_time_ns


def test_run_bench_writes_schema(tmp_path):
    out = tmp_path / "bench.json"
    doc = run_bench(quick=True, compare=False, out=str(out),
                    echo=lambda line: None)
    on_disk = json.loads(out.read_text())
    assert on_disk == doc
    assert doc["schema_version"] == 2
    assert set(doc["scenarios"]) == set(SCENARIOS)
    for name in SCENARIOS:
        entry = doc["scenarios"][name]
        assert entry["scenario"] == name
        assert entry["engine"] == "calendar"
        assert entry["completed"] is True
    assert doc["engine"]["kind"] == "calendar"
    assert doc["measurement"]["estimator"] == "min wall time"


def test_quick_is_marked_in_document(tmp_path):
    doc = run_bench(quick=True, compare=False, out=None,
                    echo=lambda line: None)
    assert doc["quick"] is True
    assert "--quick" in doc["generated_by"]
