"""Baseline — RNIC generations under packet spraying (§1).

The paper's framing: previous-generation RNICs (CX-4/5) use Go-Back-N
and *drop* out-of-order packets, so spraying collapses them; the current
generation (CX-6/7, NIC-SR) at least accepts OOO data but still NACKs
blindly; the Ideal transport shows the ceiling.  This bench quantifies
all three on the Fig. 1 workload.
"""

import pytest

from repro.collectives.group import interleaved_ring_groups
from repro.harness.motivation import motivation_config
from repro.harness.network import Network
from repro.harness.report import format_table, percent

FLOW_BYTES = 1_000_000
TRANSPORTS = ("gbn", "nic_sr", "ideal")


def _run(transport, seed=6):
    net = Network(motivation_config(transport=transport, seed=seed))
    for members in interleaved_ring_groups(8, 2):
        for i, node in enumerate(members):
            net.post_message(node, members[(i + 1) % len(members)],
                             FLOW_BYTES)
    net.run(until_ns=120_000_000_000)
    metrics = net.metrics
    done = [f.receiver_done_ns for f in metrics.flows.values()
            if f.receiver_done_ns is not None]
    ooo_dropped = 0
    for nic in net.nics:
        for rqp in nic.receivers.values():
            ooo_dropped += getattr(rqp, "ooo_dropped", 0)
    net.stop()
    return {
        "done": metrics.all_flows_done(),
        "tail_us": max(done) / 1000 if done else None,
        "retx": metrics.spurious_ratio,
        "ooo_dropped": ooo_dropped,
        "goodput": metrics.mean_goodput_gbps(),
    }


@pytest.mark.figure("generations")
def test_rnic_generations_under_spraying(benchmark):
    results = benchmark.pedantic(
        lambda: {t: _run(t) for t in TRANSPORTS}, rounds=1, iterations=1)

    print("\n=== RNIC generations x random packet spraying ===")
    print(format_table(
        ["transport", "tail us", "retx ratio", "receiver-dropped OOO",
         "goodput Gbps"],
        [[t, f"{r['tail_us']:.0f}" if r["tail_us"] else "DNF",
          percent(r["retx"]), r["ooo_dropped"], f"{r['goodput']:.1f}"]
         for t, r in results.items()]))

    gbn, nic_sr, ideal = (results[t] for t in TRANSPORTS)
    assert all(r["done"] for r in results.values())
    # GBN throws away every OOO arrival; NIC-SR keeps them.
    assert gbn["ooo_dropped"] > 0
    assert nic_sr["ooo_dropped"] == 0
    # Strict ordering of the generations, as §1 describes.
    assert gbn["retx"] > nic_sr["retx"] > ideal["retx"] == 0.0
    assert ideal["goodput"] > nic_sr["goodput"] > gbn["goodput"]
