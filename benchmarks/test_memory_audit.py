"""Extension — measured switch state vs the §4 analytical model.

Runs an Alltoall (the QP-heaviest collective, §4's sizing case) under
Themis and audits every ToR's actual flow-table + ring-queue + PathMap
footprint using the paper's per-entry byte constants, then compares with
what Eq. 4 predicts for the same QP census and ring capacity.
"""

import pytest

from repro.harness.collective_runner import EvalScale, fig5_config
from repro.harness.network import Network
from repro.harness.report import format_table
from repro.themis.audit import audit_network
from repro.themis.memory import FLOW_ENTRY_BYTES


@pytest.mark.figure("memory-audit")
def test_memory_audit_matches_model(benchmark):
    scale = EvalScale()

    def run():
        config = fig5_config("themis", 10, 200, scale=scale)
        net = Network(config)
        from repro.collectives import AllToAll
        from repro.collectives.group import cross_rack_groups
        groups = cross_rack_groups(scale.num_tors, scale.nics_per_tor)
        colls = [AllToAll(net, members, scale.collective_bytes)
                 for members in groups]
        for coll in colls:
            coll.start()
        net.run(until_ns=60_000_000_000)
        audits = audit_network(net)
        # Runtime ring capacity for any cross-rack flow:
        from repro.net.packet import FlowKey
        cap = net._queue_capacity_for(FlowKey(0, scale.nics_per_tor))
        done = all(c.complete for c in colls)
        net.stop()
        return audits, cap, done

    audits, ring_capacity, done = benchmark.pedantic(run, rounds=1,
                                                     iterations=1)
    assert done

    rows = []
    for audit in audits:
        model_dest = audit.flow_entries * (FLOW_ENTRY_BYTES
                                           + ring_capacity)
        rows.append([audit.switch_name, audit.flow_entries,
                     audit.dest_bytes, model_dest, audit.source_bytes])
    print("\n=== Measured Themis switch state vs Eq. 4 ===")
    print(f"(runtime ring capacity: {ring_capacity} entries/QP)")
    print(format_table(
        ["ToR", "QPs", "measured dest B", "Eq.4 dest B", "source B"],
        rows))

    total_qps = sum(a.flow_entries for a in audits)
    # Every cross-rack (src, dst) pair terminates somewhere: n_tors *
    # nics_per_tor senders each talking to (group_size - 1) peers.
    expected_qps = (scale.num_tors * scale.nics_per_tor
                    * (scale.num_tors - 1))
    assert total_qps == expected_qps
    for audit, row in zip(audits, rows):
        # The measured footprint equals the model exactly when every ring
        # uses the default 1-byte truncated entries.
        assert audit.dest_bytes == row[3]
    # And the grand total stays tiny relative to switch SRAM.
    total = sum(a.total_bytes for a in audits)
    print(f"total Themis state across {len(audits)} ToRs: {total} B")
    assert total < 64 * 1024 * 1024 * 0.01
