"""Table 1 / §4 — switch memory overhead of Themis.

Regenerates the analytical memory budget with Table 1's reference values
and prints the §4 walkthrough (PathMap bytes, per-QP bytes, total, SRAM
fraction).  Paper headline: M_total ≈ 193 KB on a 64 MB Tofino.
"""

import pytest

from repro.harness.report import format_table, percent
from repro.themis.memory import (MemoryParams, TOFINO_SRAM_BYTES,
                                 memory_overhead)


def _table1_rows():
    params = MemoryParams()
    breakdown = memory_overhead(params)
    rows = [
        ("N_paths (equal-cost paths)", params.n_paths),
        ("BW (last-hop bandwidth)", f"{params.bandwidth_bps/1e9:.0f} Gbps"),
        ("RTT_last (last-hop RTT)", f"{params.rtt_last_s*1e6:.0f} us"),
        ("N_NIC (NICs per ToR)", params.n_nic),
        ("N_QP (cross-rack QPs per RNIC)", params.n_qp),
        ("MTU", f"{params.mtu_bytes} B"),
        ("F (queue expansion factor)", params.expansion_factor),
    ]
    return params, breakdown, rows


@pytest.mark.figure("table1")
def test_table1_memory_overhead(benchmark):
    params, breakdown, rows = benchmark.pedantic(_table1_rows, rounds=1,
                                                 iterations=1)
    print("\n=== Table 1: symbols and reference values ===")
    print(format_table(["symbol", "reference value"], rows))

    print("\n=== Eq. 4 memory budget ===")
    print(format_table(["component", "bytes"], [
        ("M_PathMap", breakdown.pathmap_bytes),
        ("ring queue entries per QP", breakdown.queue_entries),
        ("M_QP (flow entry + queue)", breakdown.per_qp_bytes),
        ("M_total", breakdown.total_bytes),
    ]))
    frac = breakdown.sram_fraction(TOFINO_SRAM_BYTES)
    print(f"M_total = {breakdown.total_kb():.1f} KB "
          f"({percent(frac)} of 64 MB SRAM)  "
          f"[paper: ~193 KB; quotes 0.6%, Eq. 4 arithmetic gives ~0.3%]")

    assert breakdown.queue_entries == 100
    assert breakdown.per_qp_bytes == 120
    assert breakdown.total_bytes == 192_512          # ≈ 193 KB
    assert frac < 0.01


@pytest.mark.figure("table1")
def test_memory_scaling_sweep(benchmark):
    """Extension: how the budget scales with fabric size (not in paper,
    but the deployment question §4 is answering)."""

    def sweep():
        rows = []
        for n_nic in (16, 32, 64):
            for n_qp in (50, 100, 200):
                total = memory_overhead(
                    MemoryParams(n_nic=n_nic, n_qp=n_qp)).total_bytes
                rows.append((n_nic, n_qp, f"{total/1000:.0f} KB",
                             percent(total / TOFINO_SRAM_BYTES)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n=== Memory scaling (N_NIC x N_QP) ===")
    print(format_table(["N_NIC", "N_QP", "M_total", "SRAM %"], rows))
    # Even the largest point stays far under the SRAM budget.
    assert all(float(r[2].split()[0]) < 2000 for r in rows)
