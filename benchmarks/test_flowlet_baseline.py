"""Baseline — why flowlet LB fails for RNICs (§2.3).

The flowlet dilemma the paper invokes: RNIC hardware pacing produces no
inter-packet gaps, so with a safe (large) flowlet timeout a flow never
splits — flowlet LB degenerates to per-flow hashing and inherits ECMP's
collision problem; forcing splits with a timeout below the path-delay
spread reorders packets and triggers the NIC-SR NACK pathology instead.
This sweep measures both horns of the dilemma on the Fig. 1 workload.
"""

import pytest

from repro.collectives.group import interleaved_ring_groups
from repro.harness.motivation import motivation_config
from repro.harness.network import Network
from repro.harness.report import format_table, percent
from repro.sim.engine import US
from repro.switch.lb import FlowletLB

FLOW_BYTES = 2_000_000
GAPS_US = (0.2, 1, 5, 50, 500)


def _run(gap_us=None, scheme="flowlet", seed=4):
    kwargs = {}
    if gap_us is not None:
        kwargs["flowlet_gap_ns"] = int(gap_us * US)
    net = Network(motivation_config(scheme=scheme, seed=seed, **kwargs))
    for members in interleaved_ring_groups(8, 2):
        for i, node in enumerate(members):
            net.post_message(node, members[(i + 1) % len(members)],
                             FLOW_BYTES)
    net.run(until_ns=60_000_000_000)
    metrics = net.metrics
    done = [f.receiver_done_ns for f in metrics.flows.values()
            if f.receiver_done_ns is not None]
    splits = sum(s.lb.flowlet_switches for s in net.topology.switches
                 if isinstance(s.lb, FlowletLB))
    net.stop()
    return {
        "tail_us": max(done) / 1000 if metrics.all_flows_done() else None,
        "splits": splits,
        "retx": metrics.spurious_ratio,
        "nacks": metrics.nacks_generated,
        "goodput": metrics.mean_goodput_gbps(),
        "done": metrics.all_flows_done(),
    }


@pytest.mark.figure("flowlet-baseline")
def test_flowlet_dilemma(benchmark):
    def sweep():
        rows = {gap: _run(gap_us=gap) for gap in GAPS_US}
        rows["ecmp"] = _run(scheme="ecmp")
        rows["themis"] = _run(scheme="themis")
        return rows

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n=== Flowlet gap sweep (Fig. 1 workload) ===")
    print(format_table(
        ["config", "flowlet splits", "NACKs", "retx", "goodput Gbps"],
        [[f"gap={k} us" if isinstance(k, (int, float)) else k,
          r["splits"], r["nacks"], percent(r["retx"]),
          f"{r['goodput']:.1f}"] for k, r in results.items()]))

    assert all(r["done"] for r in results.values())
    safe = results[GAPS_US[-1]]     # 500 us gap: never splits
    tiny = results[GAPS_US[0]]      # 0.2 us gap: splits on any hiccup
    # Horn 1 (the paper's §2.3 point): at every realistic timeout the
    # hardware-paced stream never opens a gap — zero splits, per-flow
    # behaviour, no load-balancing win over ECMP's granularity.
    for gap in GAPS_US[1:]:
        assert results[gap]["splits"] == 0, gap
        assert results[gap]["nacks"] == 0, gap
    # Horn 2: forcing splits (timeout below the pacing gap's jitter)
    # reorders and wakes the NACK pathology up.
    assert tiny["splits"] > 20
    assert tiny["retx"] > 0.005
    # Themis with packet-level spraying beats both horns.
    assert results["themis"]["goodput"] > safe["goodput"]
    assert results["themis"]["goodput"] > tiny["goodput"]
