"""Baseline — ConWeave-style in-network reordering vs Themis (§2.3).

Two angles on the paper's argument for filtering NACKs instead of
reordering packets in the fabric:

* **resource cost** — the reorder buffer must hold real packet payloads
  (MTU-sized), while Themis stores 1-byte truncated PSNs.  Under
  packet-level spraying the reordering approach is continuously engaged;
  we price both on the same traffic.
* **performance** — both shield the RNIC well when nothing is lost;
  the comparison quantifies how close they land, and what rerouting's
  coarser granularity costs in completion time.
"""

import pytest

from repro.collectives.group import interleaved_ring_groups
from repro.conweave.config import ConweaveConfig
from repro.harness.motivation import motivation_config
from repro.harness.network import Network
from repro.harness.report import format_table, percent
from repro.sim.engine import US
from repro.themis.audit import audit_network

FLOW_BYTES = 2_000_000
MTU_BYTES = 1500
# Fair settings for the reordering baseline: reroute sparingly (ConWeave
# reroutes on congestion episodes, not continuously) and give the buffer
# enough slots to absorb a full path-delay-difference burst at 100G.
CONWEAVE = ConweaveConfig(buffer_packets=512, flip_interval_ns=500 * US,
                          reorder_timeout_ns=200 * US)


def _run(scheme, seed=5):
    net = Network(motivation_config(scheme=scheme, seed=seed,
                                    conweave=CONWEAVE))
    for members in interleaved_ring_groups(8, 2):
        for i, node in enumerate(members):
            net.post_message(node, members[(i + 1) % len(members)],
                             FLOW_BYTES)
    net.run(until_ns=120_000_000_000)
    metrics = net.metrics
    done = [f.receiver_done_ns for f in metrics.flows.values()
            if f.receiver_done_ns is not None]
    out = {
        "done": metrics.all_flows_done(),
        "tail_us": max(done) / 1000 if done else None,
        "nacks": metrics.nacks_generated,
        "retx": metrics.spurious_ratio,
        "goodput": metrics.mean_goodput_gbps(),
        "reorder_peak_pkts": 0,
        "reorder_state_bytes": 0,
        "themis_state_bytes": 0,
    }
    if hasattr(net, "conweave_dests"):
        out["reorder_peak_pkts"] = max(d.peak_buffer
                                       for d in net.conweave_dests)
        # Peak packets held x MTU: the payload SRAM the scheme needs.
        out["reorder_state_bytes"] = sum(
            d.peak_buffer for d in net.conweave_dests) * MTU_BYTES
    if scheme.startswith("themis"):
        out["themis_state_bytes"] = sum(a.total_bytes
                                        for a in audit_network(net))
    net.stop()
    return out


@pytest.mark.figure("conweave-baseline")
def test_conweave_vs_themis(benchmark):
    schemes = ("rps", "conweave", "conweave_spray", "themis")
    results = benchmark.pedantic(
        lambda: {s: _run(s) for s in schemes}, rounds=1, iterations=1)

    print("\n=== In-network reordering vs NACK filtering ===")
    print(format_table(
        ["scheme", "tail us", "NACKs", "retx", "goodput",
         "reorder peak pkts", "switch state B"],
        [[s, f"{r['tail_us']:.0f}", r["nacks"], percent(r["retx"]),
          f"{r['goodput']:.1f}", r["reorder_peak_pkts"],
          r["reorder_state_bytes"] or r["themis_state_bytes"]]
         for s, r in results.items()]))

    assert all(r["done"] for r in results.values())
    rps, conweave, spray, themis = (results[s] for s in schemes)

    # Flow-level rerouting shields the NIC completely (zero NACKs) but
    # its coarse granularity leaves bandwidth on the table.
    assert conweave["nacks"] == 0
    assert conweave["goodput"] < themis["goodput"]

    # Reordering + spraying also shields the NIC and performs well —
    # but it must buffer PAYLOADS.  Price both per the same traffic:
    per_qp_reorder = spray["reorder_state_bytes"] / 8  # 8 cross-rack QPs
    per_qp_themis = themis["themis_state_bytes"] / 8
    print(f"\nper-QP switch SRAM: reorder+spray ~{per_qp_reorder:.0f} B "
          f"vs Themis ~{per_qp_themis:.0f} B "
          f"({per_qp_reorder / per_qp_themis:.0f}x). At the paper's "
          f"census (1600 cross-rack QPs/ToR) reordering needs "
          f"{per_qp_reorder * 1600 / 1e6:.0f} MB — vs 64 MB of total "
          f"Tofino SRAM — while Themis needs "
          f"{per_qp_themis * 1600 / 1e3:.0f} KB.")
    assert spray["nacks"] == 0
    assert spray["reorder_state_bytes"] > 20 * themis["themis_state_bytes"]

    # Themis beats raw spraying on the same traffic with KB-scale state.
    assert themis["goodput"] > rps["goodput"]
    assert themis["retx"] < 0.3 * rps["retx"]