"""Extension — the headline claim is seed-robust.

Single-seed simulations can hinge on hash luck.  This bench re-runs the
Fig. 5a headline cell — Allreduce at the recommended DCQCN (900, 4) —
across seeds and reports mean ± CI for each scheme; the Themis < AR <
ordering must hold in the mean and (for Themis vs AR) in every draw.
"""

import pytest

from repro.harness.collective_runner import (EvalScale, fig5_config,
                                             run_collective)
from repro.harness.replication import replicate_many
from repro.harness.report import format_table

SEEDS = (1, 2, 3)
SCHEMES = ("ecmp", "ar", "themis")


def _tails_for_seed(seed):
    scale = EvalScale()
    out = {}
    for scheme in SCHEMES:
        config = fig5_config(scheme, 900, 4, scale=scale, seed=seed)
        result = run_collective(config, "allreduce", scale=scale)
        assert result.completed, (scheme, seed)
        out[scheme] = result.tail_completion_ms
    return out


@pytest.mark.figure("seed-robustness")
def test_fig5_headline_across_seeds(benchmark):
    stats = benchmark.pedantic(
        lambda: replicate_many(_tails_for_seed, seeds=SEEDS),
        rounds=1, iterations=1)

    print("\n=== Allreduce @ DCQCN(900, 4), tail completion ms, "
          f"{len(SEEDS)} seeds ===")
    print(format_table(
        ["scheme", "mean", "min", "max", "±95% CI"],
        [[s, f"{stats[s].mean:.3f}", f"{stats[s].min:.3f}",
          f"{stats[s].max:.3f}", f"{stats[s].ci95_halfwidth():.3f}"]
         for s in SCHEMES]))

    # Ordering holds in the mean...
    assert stats["themis"].mean < stats["ar"].mean
    assert stats["themis"].mean < stats["ecmp"].mean
    # ...and Themis beats AR in every single draw, not just on average.
    assert stats["themis"].max < stats["ar"].min
