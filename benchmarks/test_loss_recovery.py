"""Extension — loss recovery latency under Themis (§6 robustness).

The paper's experiments are loss-free; this bench injects real core loss
and verifies Themis's invariant: valid NACKs still reach the sender and
compensated NACKs stand in for blocked ones, so recovery stays mostly
NACK-driven instead of degenerating to RTO waits.
"""

import pytest

from repro.harness.motivation import motivation_config
from repro.harness.network import Network
from repro.harness.report import format_table, percent

FLOW_BYTES = 1_000_000
LOSS_RATES = (0.0005, 0.002, 0.01)


def _run(scheme, loss_rate, seed=11):
    net = Network(motivation_config(scheme=scheme, seed=seed))
    for sw in net.topology.switches:
        if sw.name.startswith("spine"):
            for port in sw.ports:
                port.set_loss(loss_rate, net.rng.fork(f"l{port.name}"))
    for src, dst in ((0, 2), (2, 4), (4, 6), (6, 0),
                     (1, 3), (3, 5), (5, 7), (7, 1)):
        net.post_message(src, dst, FLOW_BYTES)
    net.run(until_ns=60_000_000_000)
    metrics = net.metrics
    done = [f.receiver_done_ns for f in metrics.flows.values()
            if f.receiver_done_ns is not None]
    timeouts = sum(f.timeouts for f in metrics.flows.values())
    net.stop()
    return {
        "done": metrics.all_flows_done(),
        "tail_us": max(done) / 1000 if done else None,
        "drops": metrics.drops,
        "timeouts": timeouts,
        "compensated": metrics.themis.nacks_compensated,
        "forwarded": metrics.themis.nacks_forwarded,
    }


@pytest.mark.figure("loss-recovery")
def test_loss_recovery_sweep(benchmark):
    results = benchmark.pedantic(
        lambda: {rate: {scheme: _run(scheme, rate)
                        for scheme in ("rps", "themis")}
                 for rate in LOSS_RATES},
        rounds=1, iterations=1)

    print("\n=== Loss recovery under injected core loss ===")
    rows = []
    for rate, by_scheme in results.items():
        for scheme, r in by_scheme.items():
            rows.append([percent(rate), scheme,
                         f"{r['tail_us']:.0f}" if r["tail_us"] else "DNF",
                         r["drops"], r["timeouts"], r["compensated"]])
    print(format_table(
        ["loss", "scheme", "tail us", "drops", "timeouts", "compensated"],
        rows))

    for rate, by_scheme in results.items():
        # Reliability invariant: everything completes despite loss.
        assert by_scheme["rps"]["done"], rate
        assert by_scheme["themis"]["done"], rate
    # At the higher loss rates compensation is exercised.
    heavy = results[LOSS_RATES[-1]]["themis"]
    assert heavy["compensated"] > 0
    # Themis still lets genuinely-needed NACKs through.
    assert heavy["forwarded"] > 0
