"""Ablation — what each Themis mechanism contributes (extension).

DESIGN.md §5: run the Fig. 1 motivation workload under
* full Themis (validation + compensation),
* themis_nocomp (validation only; blocked-but-lost packets wait for RTO),
* themis_noval (PSN spraying only; every commodity NACK reaches senders),
* plain random spraying (no Themis at all),
both on a loss-free fabric and with injected last-tier loss, where
compensation has to carry the recovery.
"""

import pytest

from repro.collectives.group import interleaved_ring_groups
from repro.harness.motivation import motivation_config
from repro.harness.network import Network
from repro.harness.report import format_table, percent

FLOW_BYTES = 2_000_000
SCHEMES = ("rps", "themis_noval", "themis_nocomp", "themis")


def _run(scheme, loss_rate=0.0, seed=3):
    net = Network(motivation_config(scheme=scheme, seed=seed))
    if loss_rate:
        for sw in net.topology.switches:
            if sw.name.startswith("spine"):
                for port in sw.ports:
                    port.set_loss(loss_rate,
                                  net.rng.fork(f"loss-{port.name}"))
    for members in interleaved_ring_groups(8, 2):
        for i, node in enumerate(members):
            net.post_message(node, members[(i + 1) % len(members)],
                             FLOW_BYTES)
    net.run(until_ns=30_000_000_000)
    metrics = net.metrics
    done = [f.receiver_done_ns for f in metrics.flows.values()
            if f.receiver_done_ns is not None]
    completion = max(done) if metrics.all_flows_done() else None
    timeouts = sum(f.timeouts for f in metrics.flows.values())
    net.stop()
    return {
        "scheme": scheme,
        "completion_us": completion / 1000 if completion else None,
        "retx_ratio": metrics.spurious_ratio,
        "nacks": metrics.nacks_generated,
        "blocked": metrics.themis.nacks_blocked,
        "compensated": metrics.themis.nacks_compensated,
        "timeouts": timeouts,
        "drops": metrics.drops,
        "goodput": metrics.mean_goodput_gbps(),
    }


@pytest.mark.figure("ablation-components")
def test_component_ablation_lossless(benchmark):
    results = benchmark.pedantic(
        lambda: [_run(s) for s in SCHEMES], rounds=1, iterations=1)
    print("\n=== Component ablation (loss-free ring workload) ===")
    print(format_table(
        ["scheme", "completion us", "retx", "NACKs", "blocked", "goodput"],
        [[r["scheme"], f"{r['completion_us']:.0f}",
          percent(r["retx_ratio"]), r["nacks"], r["blocked"],
          f"{r['goodput']:.1f}"] for r in results]))

    by = {r["scheme"]: r for r in results}
    # Validation is the big lever: spraying alone leaves the NACK damage.
    assert by["themis"]["retx_ratio"] < 0.3 * by["rps"]["retx_ratio"]
    assert by["themis_noval"]["retx_ratio"] > by["themis"]["retx_ratio"]
    # Without loss, compensation never fires but costs nothing.
    assert by["themis"]["compensated"] == 0
    assert by["themis"]["goodput"] >= 0.95 * by["themis_nocomp"]["goodput"]
    # End to end, Themis beats plain spraying.
    assert by["themis"]["goodput"] > by["rps"]["goodput"]


@pytest.mark.figure("ablation-components")
def test_component_ablation_with_loss(benchmark):
    results = benchmark.pedantic(
        lambda: [_run(s, loss_rate=0.002) for s in
                 ("themis_nocomp", "themis")],
        rounds=1, iterations=1)
    print("\n=== Component ablation (0.2% injected core loss) ===")
    print(format_table(
        ["scheme", "completion us", "drops", "timeouts", "compensated"],
        [[r["scheme"],
          f"{r['completion_us']:.0f}" if r["completion_us"] else "DNF",
          r["drops"], r["timeouts"], r["compensated"]] for r in results]))

    by = {r["scheme"]: r for r in results}
    assert by["themis"]["completion_us"] is not None
    assert by["themis_nocomp"]["completion_us"] is not None
    # Compensation converts timeout recoveries into NACK recoveries.
    assert by["themis"]["compensated"] > 0
    assert by["themis"]["timeouts"] <= by["themis_nocomp"]["timeouts"]
