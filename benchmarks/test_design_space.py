"""Extension — the §2.3 design space, measured on one workload.

Every alternative the paper discusses, side by side on the Fig. 1 ring
traffic:

* commodity NIC-SR + random spraying (the problem),
* commodity NIC-SR + flowlet LB (gaps never form: per-flow behaviour),
* ConWeave-style in-network reordering,
* MPRDMA-style transport (rich NACKs + sender filtering — needs new
  NICs),
* Themis (the paper: commodity NICs + ToR middleware),
* Ideal oracle transport (upper bound).
"""

import pytest

from repro.collectives.group import interleaved_ring_groups
from repro.harness.motivation import motivation_config
from repro.harness.network import Network
from repro.harness.report import format_table, percent

FLOW_BYTES = 2_000_000

CONDITIONS = (
    ("commodity + spray", "rps", "nic_sr"),
    ("commodity + flowlet", "flowlet", "nic_sr"),
    ("conweave reorder", "conweave_spray", "nic_sr"),
    ("mp_rdma + spray", "themis_noval", "mp_rdma"),
    ("themis", "themis", "nic_sr"),
    ("ideal + spray", "rps", "ideal"),
)


def _run(scheme, transport, seed=4):
    net = Network(motivation_config(scheme=scheme, transport=transport,
                                    seed=seed))
    for members in interleaved_ring_groups(8, 2):
        for i, node in enumerate(members):
            net.post_message(node, members[(i + 1) % len(members)],
                             FLOW_BYTES)
    net.run(until_ns=120_000_000_000)
    metrics = net.metrics
    done = [f.receiver_done_ns for f in metrics.flows.values()
            if f.receiver_done_ns is not None]
    out = {
        "done": metrics.all_flows_done(),
        "tail_us": max(done) / 1000 if done else None,
        "retx": metrics.spurious_ratio,
        "goodput": metrics.mean_goodput_gbps(),
        "needs_new_nic": transport in ("mp_rdma", "ideal"),
        "needs_switch": scheme.startswith(("themis", "conweave")),
    }
    net.stop()
    return out


@pytest.mark.figure("design-space")
def test_design_space(benchmark):
    results = benchmark.pedantic(
        lambda: {label: _run(scheme, transport)
                 for label, scheme, transport in CONDITIONS},
        rounds=1, iterations=1)

    print("\n=== The §2.3 design space on the Fig. 1 workload ===")
    print(format_table(
        ["approach", "tail us", "retx", "goodput", "new NIC?",
         "switch logic?"],
        [[label, f"{r['tail_us']:.0f}", percent(r["retx"]),
          f"{r['goodput']:.1f}",
          "yes" if r["needs_new_nic"] else "no",
          "yes" if r["needs_switch"] else "no"]
         for label, r in results.items()]))

    assert all(r["done"] for r in results.values())
    problem = results["commodity + spray"]
    themis = results["themis"]
    ideal = results["ideal + spray"]
    # Themis recovers most of the gap to Ideal on commodity NICs.
    assert themis["goodput"] > problem["goodput"]
    assert themis["retx"] < 0.3 * problem["retx"]
    assert ideal["goodput"] >= themis["goodput"] * 0.95
    # The NIC-modifying alternative is competitive — but needs new NICs.
    mp = results["mp_rdma + spray"]
    assert mp["goodput"] > problem["goodput"]
    assert mp["needs_new_nic"]
    # Flowlet LB degenerates to per-flow: no retx, but no spraying gain.
    flowlet = results["commodity + flowlet"]
    assert flowlet["retx"] < 0.01
    assert themis["goodput"] > flowlet["goodput"]