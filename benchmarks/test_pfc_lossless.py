"""Extension — Themis on a lossless (PFC) fabric.

The paper evaluates on a lossy-with-ECN fabric (Zero-Touch-RoCE style).
Many production RoCE fabrics instead run PFC.  Two demonstrations:

* an **incast** into a shallow-buffered rack: the lossy fabric drops and
  recovers via retransmission; with PFC the pressure backs up into the
  senders and not one packet is lost,
* the **Fig. 1 ring** under Themis on both fabrics: the invalid-NACK
  pathology is caused by multi-path *skew*, not loss, so going lossless
  does not remove it — and Themis filters identically on both.
"""

import pytest

from repro.collectives.group import interleaved_ring_groups
from repro.harness.motivation import motivation_config
from repro.harness.network import Network, NetworkConfig, TopologySpec
from repro.harness.report import format_table, percent
from repro.sim.engine import US
from repro.switch.pfc import PfcConfig

RING_BYTES = 2_000_000
INCAST_BYTES = 500_000
# XOFF must leave headroom: with ~6 active ingress ports per ToR and a
# 100 KB shared buffer, 6 x 12 KB + ~25 KB of pause-propagation
# in-flight bytes still fits — the standard PFC headroom calculation.
PFC = PfcConfig(xoff_bytes=12_000, xon_bytes=6_000)


def _run_incast(pfc, seed=9):
    """7:1 incast into one NIC through a shallow-buffered fabric."""
    topo = TopologySpec(kind="leaf_spine", num_tors=2, num_spines=2,
                        nics_per_tor=4, link_bandwidth_bps=25e9,
                        link_delay_ns=US)
    net = Network(NetworkConfig(topology=topo, scheme="ecmp",
                                buffer_bytes=100_000, pfc=pfc, seed=seed))
    receiver = 4
    for src in (0, 1, 2, 3, 5, 6, 7):
        net.post_message(src, receiver, INCAST_BYTES, qp=src)
    net.run(until_ns=120_000_000_000)
    return _collect(net)


def _run_ring(scheme, pfc, seed=9):
    net = Network(motivation_config(scheme=scheme, seed=seed, pfc=pfc))
    for members in interleaved_ring_groups(8, 2):
        for i, node in enumerate(members):
            net.post_message(node, members[(i + 1) % len(members)],
                             RING_BYTES)
    net.run(until_ns=120_000_000_000)
    return _collect(net)


def _collect(net):
    metrics = net.metrics
    pauses = sum(s.pfc.pauses_sent for s in net.topology.switches
                 if s.pfc is not None)
    net.stop()
    return {
        "done": metrics.all_flows_done(),
        "drops": metrics.drops,
        "pauses": pauses,
        "retx": metrics.spurious_ratio,
        "nacks": metrics.nacks_generated,
        "blocked": metrics.themis.nacks_blocked,
        "goodput": metrics.mean_goodput_gbps(),
    }


@pytest.mark.figure("pfc-lossless")
def test_themis_on_lossless_fabric(benchmark):
    def sweep():
        return {
            ("incast/ecmp", "lossy"): _run_incast(None),
            ("incast/ecmp", "pfc"): _run_incast(PFC),
            ("ring/rps", "lossy"): _run_ring("rps", None),
            ("ring/rps", "pfc"): _run_ring("rps", PFC),
            ("ring/themis", "lossy"): _run_ring("themis", None),
            ("ring/themis", "pfc"): _run_ring("themis", PFC),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n=== Lossy (ECN) vs lossless (PFC) fabric ===")
    print(format_table(
        ["workload", "fabric", "drops", "pauses", "NACKs", "blocked",
         "retx", "goodput"],
        [[w, f, r["drops"], r["pauses"], r["nacks"], r["blocked"],
          percent(r["retx"]), f"{r['goodput']:.1f}"]
         for (w, f), r in results.items()]))

    assert all(r["done"] for r in results.values())
    # Incast: the lossy shallow buffer drops; PFC removes every drop.
    assert results[("incast/ecmp", "lossy")]["drops"] > 0
    assert results[("incast/ecmp", "pfc")]["drops"] == 0
    assert results[("incast/ecmp", "pfc")]["pauses"] > 0
    # Lossless does not cure the NACK pathology: skew still NACKs.
    assert results[("ring/rps", "pfc")]["nacks"] > 0
    assert results[("ring/rps", "pfc")]["drops"] == 0
    # Themis filters just the same on the lossless fabric.
    themis_pfc = results[("ring/themis", "pfc")]
    assert themis_pfc["blocked"] > 0
    assert themis_pfc["retx"] < results[("ring/rps", "pfc")]["retx"]
