"""Ablation — ring PSN queue sizing (the §4 expansion factor F).

An undersized queue evicts in-flight PSNs before their NACK returns, so
tPSN identification fails and Themis-D must conservatively forward those
NACKs — degrading toward plain spraying.  This sweep shows the knee:
once capacity covers the last-hop BDP (plus queueing slack), misses stop.
"""

import pytest

from collections import OrderedDict
from repro.collectives.group import interleaved_ring_groups
from repro.harness.motivation import motivation_config
from repro.harness.network import Network
from repro.harness.report import format_table, percent
from repro.themis.config import ThemisConfig

FLOW_BYTES = 2_000_000
CAPACITIES = (4, 8, 16, 32, 64, 256)


def _run(capacity):
    cfg = motivation_config(
        scheme="themis",
        themis=ThemisConfig(queue_entries_override=capacity))
    net = Network(cfg)
    for members in interleaved_ring_groups(8, 2):
        for i, node in enumerate(members):
            net.post_message(node, members[(i + 1) % len(members)],
                             FLOW_BYTES)
    net.run(until_ns=30_000_000_000)
    metrics = net.metrics
    inspected = metrics.themis.nacks_inspected
    net.stop()
    return {
        "capacity": capacity,
        "miss_ratio": (metrics.themis.tpsn_not_found / inspected
                       if inspected else 0.0),
        "overflows": metrics.themis.queue_overflows,
        "blocked_frac": metrics.themis.block_ratio,
        "retx_ratio": metrics.spurious_ratio,
        "goodput": metrics.mean_goodput_gbps(),
        "done": metrics.all_flows_done(),
    }


@pytest.mark.figure("ablation-queue")
def test_queue_capacity_sweep(benchmark):
    results = benchmark.pedantic(
        lambda: OrderedDict((c, _run(c)) for c in CAPACITIES),
        rounds=1, iterations=1)

    print("\n=== Ring PSN queue capacity sweep ===")
    print(format_table(
        ["capacity", "tPSN miss", "overflows", "blocked", "retx",
         "goodput"],
        [[c, percent(r["miss_ratio"]), r["overflows"],
          percent(r["blocked_frac"]), percent(r["retx_ratio"]),
          f"{r['goodput']:.1f}"] for c, r in results.items()]))

    assert all(r["done"] for r in results.values())
    tiny = results[CAPACITIES[0]]
    big = results[CAPACITIES[-1]]
    # Tiny queues overflow and lose tPSN context.
    assert tiny["overflows"] > 0
    # Adequate capacity identifies (nearly) every trigger.
    assert big["miss_ratio"] < 0.02
    assert big["miss_ratio"] <= tiny["miss_ratio"]
    # More identified triggers -> more invalid NACKs blocked.
    assert big["blocked_frac"] >= tiny["blocked_frac"]
