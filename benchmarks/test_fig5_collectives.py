"""Figure 5 — collective communication under DCQCN (TI, TD) sweeps.

Regenerates both panels: tail (slowest-group) completion time of
Allreduce (5a) and Alltoall (5b) for ECMP, Adaptive Routing, and Themis
across the five DCQCN configurations the paper sweeps.

Paper shape targets:
* Themis outperforms both baselines in every cell.
* Vs AR, Themis is 15.6%-75.3% faster for Allreduce and 11.5%-40.7% for
  Alltoall (bands measured on the authors' 16x16 400G fabric; the default
  here is the rate-scaled fabric described in DESIGN.md §3).
* AR improves as TI shrinks / TD grows (fewer + faster-recovered slow
  starts), i.e. the Themis-vs-AR gap narrows monotonically-ish along the
  sweep.
"""

import pytest

from repro.harness.report import format_table, percent
from repro.harness.sweep import DCQCN_SWEEP, run_fig5_sweep


def _print_panel(result):
    rows = []
    for cond in DCQCN_SWEEP:
        row = [f"({cond[0]:.0f}, {cond[1]:.0f})"]
        for scheme in ("ecmp", "ar", "themis"):
            run = result.runs[cond][scheme]
            flag = "" if run.completed else " (timeout)"
            row.append(f"{run.tail_completion_ms:.3f}{flag}")
        row.append(percent(result.improvement_over("ar", "themis", cond)))
        rows.append(row)
    print(format_table(
        ["DCQCN (TI us, TD us)", "ECMP ms", "AR ms", "Themis ms",
         "Themis vs AR"], rows))


@pytest.mark.figure("fig5a")
def test_fig5a_allreduce(benchmark):
    result = benchmark.pedantic(run_fig5_sweep, args=("allreduce",),
                                rounds=1, iterations=1)
    print("\n=== Figure 5a: Allreduce tail completion time ===")
    _print_panel(result)
    lo, hi = result.improvement_range()
    print(f"Themis vs AR improvement range: {percent(lo)} .. {percent(hi)}"
          f"  [paper: 15.6% .. 75.3%]")

    for cond in DCQCN_SWEEP:
        runs = result.runs[cond]
        assert all(r.completed for r in runs.values()), cond
        # Themis wins every cell.
        assert runs["themis"].tail_completion_ns \
            <= runs["ar"].tail_completion_ns, cond
        assert runs["themis"].tail_completion_ns \
            <= runs["ecmp"].tail_completion_ns, cond
    # Band: meaningful minimum win and a large maximum win.
    assert hi > 0.40, "Themis should beat AR by a wide margin somewhere"
    # AR's pain is worst at the recommended (900, 4) configuration.
    assert result.improvement_over("ar", "themis", (900, 4)) \
        >= result.improvement_over("ar", "themis", (10, 200))


@pytest.mark.figure("fig5b")
def test_fig5b_alltoall(benchmark):
    result = benchmark.pedantic(run_fig5_sweep, args=("alltoall",),
                                rounds=1, iterations=1)
    print("\n=== Figure 5b: Alltoall tail completion time ===")
    _print_panel(result)
    lo, hi = result.improvement_range()
    print(f"Themis vs AR improvement range: {percent(lo)} .. {percent(hi)}"
          f"  [paper: 11.5% .. 40.7%]")

    for cond in DCQCN_SWEEP:
        runs = result.runs[cond]
        assert all(r.completed for r in runs.values()), cond
        assert runs["themis"].tail_completion_ns \
            <= runs["ar"].tail_completion_ns, cond
    assert lo > 0.0, "Themis never loses to AR"
    # Somewhere in the sweep the win is substantial (paper max: 40.7%);
    # unlike allreduce, the alltoall gap need not peak at (900, 4) — the
    # receiver-downlink incast bottleneck dominates both schemes there.
    assert hi > 0.25
