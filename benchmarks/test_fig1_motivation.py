"""Figure 1 — performance impact of packet spraying on commodity RNICs.

Regenerates the three measurement panels of the §2.2 motivation study:

* 1b: retransmission ratio over time for the watched flow + fleet average,
* 1c: DCQCN sending rate over time for the watched flow,
* 1d: mean throughput, NIC-SR vs the Ideal oracle transport.

Paper reference points: ~16% average spurious retransmissions, ~86% of
line rate average sending rate, NIC-SR at ~71% of Ideal throughput
(68.09 vs 95.43 Gbps).  Shape targets asserted below; see EXPERIMENTS.md
for measured-vs-paper numbers.
"""

import pytest

from repro.harness.motivation import (motivation_config, run_motivation)
from repro.harness.report import (format_series, format_table, percent,
                                  sparkline)

FLOW_BYTES = 4_000_000


def _run_pair():
    nic_sr = run_motivation(motivation_config(), flow_bytes=FLOW_BYTES)
    ideal = run_motivation(motivation_config(transport="ideal"),
                           flow_bytes=FLOW_BYTES)
    return nic_sr, ideal


@pytest.mark.figure("fig1")
def test_fig1_motivation(benchmark):
    nic_sr, ideal = benchmark.pedantic(_run_pair, rounds=1, iterations=1)

    print("\n=== Figure 1b: retransmission ratio over time "
          f"(flow {nic_sr.watched_flow}) ===")
    print(format_series(nic_sr.retx_ratio_series, time_unit_ns=1000,
                        time_label="us"))
    print(f"Average spurious retransmission ratio (all flows): "
          f"{percent(nic_sr.avg_retx_ratio)}  [paper: ~16%]")

    print("\n=== Figure 1c: sending rate over time (Gbps) ===")
    print(sparkline([v for _, v in nic_sr.rate_series_gbps]))
    print(format_series(nic_sr.rate_series_gbps, time_unit_ns=1000,
                        time_label="us", value_fmt="{:.1f} Gbps"))
    print(f"Average rate: {nic_sr.avg_rate_gbps:.1f} / "
          f"{nic_sr.line_rate_gbps:.0f} Gbps "
          f"({percent(nic_sr.avg_rate_fraction)})  [paper: ~86%]")

    print("\n=== Figure 1d: average throughput ===")
    ratio = nic_sr.mean_goodput_gbps / ideal.mean_goodput_gbps
    print(format_table(
        ["reliable transport", "throughput (Gbps)"],
        [["NIC-SR", f"{nic_sr.mean_goodput_gbps:.2f}"],
         ["Ideal", f"{ideal.mean_goodput_gbps:.2f}"]]))
    print(f"NIC-SR / Ideal = {percent(ratio)}  [paper: 68.09/95.43 = 71%]")

    # --- shape assertions -------------------------------------------
    assert nic_sr.completed and ideal.completed
    assert nic_sr.drops == 0, "motivation study must be loss-free"
    assert nic_sr.avg_retx_ratio > 0.05, "persistent spurious retx"
    assert nic_sr.avg_rate_gbps < 0.92 * nic_sr.line_rate_gbps
    assert ideal.avg_retx_ratio == 0.0
    assert ideal.mean_goodput_gbps > 0.85 * ideal.line_rate_gbps
    assert ratio < 0.85, "NIC-SR clearly below Ideal"
