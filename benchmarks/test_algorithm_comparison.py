"""Extension — Themis's win holds across allreduce algorithms.

The paper evaluates ring collectives; production stacks also run
halving-doubling (butterfly) allreduce, whose pairwise exchanges stress
different ToR pairs every step.  This bench checks that the Themis-vs-AR
ordering is algorithm-independent.
"""

import pytest

from repro.collectives import COLLECTIVE_CLASSES
from repro.collectives.group import cross_rack_groups
from repro.harness.collective_runner import EvalScale, fig5_config
from repro.harness.network import Network
from repro.harness.report import format_table, percent

ALGORITHMS = ("allreduce", "hd_allreduce")
SCHEMES = ("ecmp", "ar", "themis")
TI_TD = (900, 4)


def _run(algorithm, scheme, scale):
    config = fig5_config(scheme, *TI_TD, scale=scale)
    net = Network(config)
    groups = cross_rack_groups(scale.num_tors, scale.nics_per_tor)
    cls = COLLECTIVE_CLASSES[algorithm]
    colls = [cls(net, members, scale.collective_bytes)
             for members in groups]
    for coll in colls:
        coll.start()
    net.run(until_ns=120_000_000_000)
    done = all(c.complete for c in colls)
    tail = max(c.completion_time_ns() for c in colls) if done else None
    net.stop()
    return {"done": done, "tail_ms": tail / 1e6 if tail else None}


@pytest.mark.figure("algorithm-comparison")
def test_themis_wins_across_algorithms(benchmark):
    scale = EvalScale()
    results = benchmark.pedantic(
        lambda: {(a, s): _run(a, s, scale)
                 for a in ALGORITHMS for s in SCHEMES},
        rounds=1, iterations=1)

    print(f"\n=== Allreduce algorithms x schemes at DCQCN{TI_TD} ===")
    rows = []
    for algorithm in ALGORITHMS:
        tails = {s: results[(algorithm, s)]["tail_ms"] for s in SCHEMES}
        gain = 1 - tails["themis"] / tails["ar"]
        rows.append([algorithm] + [f"{tails[s]:.3f}" for s in SCHEMES]
                    + [percent(gain)])
    print(format_table(
        ["algorithm", "ECMP ms", "AR ms", "Themis ms", "Themis vs AR"],
        rows))

    assert all(r["done"] for r in results.values())
    for algorithm in ALGORITHMS:
        tails = {s: results[(algorithm, s)]["tail_ms"] for s in SCHEMES}
        assert tails["themis"] < tails["ar"], algorithm
        assert tails["themis"] < tails["ecmp"], algorithm
